package core

import "contra/internal/topo"

// Switch state accounting (Figure 10). The estimate mirrors how a P4
// target would size its match-action tables:
//
//   - FwdT: one entry per (origin, local tag, pid) that probes can
//     actually deliver. Key = destination id + tag + pid; value =
//     metric vector + next tag + next hop + version.
//   - BestT: one entry per reachable origin.
//   - Tag transition table: one entry per product-graph in-edge.
//   - Flowlet table: fixed-size register array (hash-indexed), keyed
//     by (tag, pid, flowlet hash).
//   - Loop detection table: fixed-size register array of TTL ranges.
//
// Sizes use the compact encodings of the paper's P4 artifact: 16-bit
// destination ids, 16-bit fixed-point metrics, 16-bit versions, 8-bit
// ports.
const (
	flowletEntries = 1024
	loopEntries    = 512

	dstBits     = 16
	pidBits     = 8
	versionBits = 16
	portBits    = 8
	metricBits  = 16
	timeBits    = 32
	ttlBits     = 8
	hashBits    = 16
)

func bitsToBytes(bits int) int { return (bits + 7) / 8 }

// accountState fills Stats.StateBytes for every switch.
func (c *Compiled) accountState() {
	c.Stats.StateBytes = make(map[topo.NodeID]int, len(c.Switches))
	tagBits := c.PG.TagBits()
	if tagBits == 0 {
		tagBits = 1
	}
	mvBits := metricBits * len(c.Analysis.MV)
	pids := c.Analysis.NumPids()

	fwdKeyBits := dstBits + tagBits + pidBits
	fwdValBits := mvBits + tagBits + portBits + versionBits
	bestValBits := tagBits + pidBits
	transKeyBits := tagBits + portBits
	flowletBits := tagBits + pidBits + hashBits + portBits + tagBits + timeBits
	loopBits := hashBits + 2*ttlBits

	total := 0
	max := 0
	for sw, sp := range c.Switches {
		fwdEntries := sp.ReachableOrigins * len(sp.VNodes) * pids
		transEntries := len(sp.InTransition)
		bits := fwdEntries*(fwdKeyBits+fwdValBits) +
			sp.ReachableOrigins*(dstBits+bestValBits) +
			transEntries*(transKeyBits+tagBits) +
			flowletEntries*flowletBits +
			loopEntries*loopBits
		b := bitsToBytes(bits)
		c.Stats.StateBytes[sw] = b
		total += b
		if b > max {
			max = b
		}
	}
	c.Stats.TotalStateBytes = total
	c.Stats.MaxStateBytes = max
	if len(c.Switches) > 0 {
		c.Stats.MeanStateBytes = float64(total) / float64(len(c.Switches))
	}
}
