// Package core is the Contra compiler: it analyzes a policy jointly
// with a topology (§4) and produces per-switch data-plane programs that
// collectively implement the specialized distance-vector protocol —
// tag transition tables, probe multicast trees, probe origination
// specs, and the table schemas the runtime populates. It also accounts
// for switch state (Figure 10) and emits P4-16 source mirroring the
// paper's artifact.
package core

import (
	"fmt"
	"sort"
	"time"

	"contra/internal/analysis"
	"contra/internal/pg"
	"contra/internal/policy"
	"contra/internal/topo"
)

// Options tune compilation.
type Options struct {
	// ProbePeriodNs overrides the probe period; 0 derives it from the
	// topology per §5.2 (>= 0.5 x worst-case RTT).
	ProbePeriodNs int64

	// FlowletTimeoutNs is the flowlet gap after which a new flowlet
	// starts; 0 uses the paper's 200us.
	FlowletTimeoutNs int64

	// FailureDetectPeriods is k: a link with no probe for k periods is
	// considered failed (§5.4). 0 uses 3.
	FailureDetectPeriods int

	// LoopTTLDelta is the max observed TTL spread per packet hash
	// before the loop breaker fires (§5.5). 0 uses 4.
	LoopTTLDelta int

	// ProbePacking enables multi-origin probe packing (§5.2 overhead
	// reduction): a switch that would emit N per-origin probes on a
	// port in one period instead emits a single packed probe carrying
	// N entries, and defers transit re-advertisement to a once-per-
	// period flush. Off by default; the unpacked protocol is
	// byte-identical to pre-packing builds.
	ProbePacking bool

	// SuppressEps enables delta suppression when > 0 (or when
	// RefreshEvery is set): a switch skips re-advertising an origin
	// whose route is unchanged and whose metric vector moved by at
	// most SuppressEps per component since the last advertisement.
	// 0 with RefreshEvery set suppresses exact repeats only.
	SuppressEps float64

	// RefreshEvery bounds suppression staleness: every entry is
	// re-advertised at least once every RefreshEvery probe periods
	// regardless of SuppressEps. Setting it (or SuppressEps) turns
	// suppression on; 0 with SuppressEps > 0 defaults to 4.
	RefreshEvery int
}

func (o *Options) fill(t *topo.Graph) {
	if o.ProbePeriodNs == 0 {
		min := t.MaxSwitchRTT() / 2
		if min < 50_000 {
			min = 50_000 // 50us floor for tiny topologies
		}
		o.ProbePeriodNs = min
	}
	if o.FlowletTimeoutNs == 0 {
		o.FlowletTimeoutNs = 200_000 // 200us (§6.1)
	}
	if o.FailureDetectPeriods == 0 {
		o.FailureDetectPeriods = 3
	}
	if o.LoopTTLDelta == 0 {
		o.LoopTTLDelta = 4
	}
	if o.SuppressEps > 0 && o.RefreshEvery == 0 {
		o.RefreshEvery = 4
	}
}

// SuppressOn reports whether delta suppression is enabled. After fill,
// SuppressEps > 0 implies RefreshEvery > 0, so the forced-refresh knob
// alone decides.
func (o *Options) SuppressOn() bool { return o.RefreshEvery > 0 }

// SwitchProgram is the compiled artifact for one switch: everything the
// data-plane runtime needs that is static for a given policy+topology.
type SwitchProgram struct {
	Switch topo.NodeID

	// VNodes are this switch's virtual nodes (product graph states).
	VNodes []pg.NodeID

	// InTransition maps a probe's carried tag (the sender's virtual
	// node) to this switch's virtual node: NEXTPGNODE of Figure 7.
	InTransition map[pg.NodeID]pg.NodeID

	// ProbeOut maps a local virtual node to the egress ports its
	// probes multicast to (the product graph out-edges).
	ProbeOut map[pg.NodeID][]int

	// Origin, when non-nil, makes this switch originate probes.
	Origin *OriginSpec

	// ReachableOrigins counts destinations whose probes can reach this
	// switch (sizes FwdT; the paper's "minimizing the forwarding table
	// sizes" optimization).
	ReachableOrigins int
}

// OriginSpec describes probe origination for a destination switch.
type OriginSpec struct {
	VNode pg.NodeID // the probe-sending state (§4.1)
	Pids  []int     // one probe per pid per period
}

// Compiled is the full compilation result.
type Compiled struct {
	Topo     *topo.Graph
	Policy   *policy.Policy
	Analysis *analysis.Result
	PG       *pg.Graph
	Switches map[topo.NodeID]*SwitchProgram
	Opts     Options
	Stats    Stats
}

// Stats reports compile-time measurements (Figures 9 and 10).
type Stats struct {
	CompileTime     time.Duration
	SwitchCount     int
	PGNodes         int
	TagBits         int
	Pids            int
	MVWidth         int
	ProbeBytes      int // wire size of one probe
	StateBytes      map[topo.NodeID]int
	MaxStateBytes   int
	MeanStateBytes  float64
	TotalStateBytes int
}

// Compile runs the full pipeline: analysis, product graph, per-switch
// program generation, and state accounting.
func Compile(t *topo.Graph, pol *policy.Policy, opts Options) (*Compiled, error) {
	start := time.Now()
	opts.fill(t)

	res, err := analysis.Analyze(pol)
	if err != nil {
		return nil, err
	}
	graph, err := pg.Build(t, pol)
	if err != nil {
		return nil, err
	}
	if graph.NumNodes() == 0 {
		return nil, fmt.Errorf("core: policy %q admits no path on topology %s (every virtual node pruned)",
			pol.String(), t.Name)
	}

	c := &Compiled{
		Topo:     t,
		Policy:   pol,
		Analysis: res,
		PG:       graph,
		Switches: make(map[topo.NodeID]*SwitchProgram),
		Opts:     opts,
	}

	pids := make([]int, res.NumPids())
	for i := range pids {
		pids[i] = i
	}

	for _, x := range t.Switches() {
		sp := &SwitchProgram{
			Switch:       x,
			VNodes:       append([]pg.NodeID(nil), graph.VirtualNodes(x)...),
			InTransition: make(map[pg.NodeID]pg.NodeID),
			ProbeOut:     make(map[pg.NodeID][]int),
		}
		for _, v := range sp.VNodes {
			// Incoming: probes from neighbor virtual node u transition
			// to v.
			for _, u := range graph.In(v) {
				sp.InTransition[u] = v
			}
			// Outgoing: multicast to the ports leading to successor
			// switches.
			var ports []int
			for _, u := range graph.Out(v) {
				nb := graph.Node(u).Topo
				if port := t.PortTo(x, nb); port >= 0 {
					ports = append(ports, port)
				}
			}
			sort.Ints(ports)
			sp.ProbeOut[v] = ports
		}
		if send, ok := graph.SendState(x); ok {
			sp.Origin = &OriginSpec{VNode: send, Pids: pids}
		}
		c.Switches[x] = sp
	}

	c.countReachability()
	c.accountState()
	c.Stats.CompileTime = time.Since(start)
	c.Stats.SwitchCount = len(c.Switches)
	c.Stats.PGNodes = graph.NumNodes()
	c.Stats.TagBits = graph.TagBits()
	c.Stats.Pids = res.NumPids()
	c.Stats.MVWidth = len(res.MV)
	c.Stats.ProbeBytes = c.probeWireBytes()
	return c, nil
}

// countReachability computes, per switch, how many origins' probes can
// reach it (BFS per origin over the product graph).
func (c *Compiled) countReachability() {
	reach := make(map[topo.NodeID]map[topo.NodeID]bool) // switch -> set of origins
	for _, x := range c.Topo.Switches() {
		send, ok := c.PG.SendState(x)
		if !ok {
			continue
		}
		seen := make([]bool, c.PG.NumNodes())
		stack := []pg.NodeID{send}
		seen[send] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sw := c.PG.Node(v).Topo
			if reach[sw] == nil {
				reach[sw] = make(map[topo.NodeID]bool)
			}
			reach[sw][x] = true
			for _, u := range c.PG.Out(v) {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	for sw, origins := range reach {
		if sp := c.Switches[sw]; sp != nil {
			sp.ReachableOrigins = len(origins)
		}
	}
}

// Recompile compiles a new policy source against the same topology and
// options as c — the runtime-update entry point. Policy hot-swap uses
// it so a mid-run recompilation is guaranteed to produce an artifact
// the running fabric can install: same switches, same probe period,
// same protocol knobs, only the policy (and hence the product graph,
// tag space and probe layout) changes.
func (c *Compiled) Recompile(src string) (*Compiled, error) {
	pol, err := policy.Parse(src, policy.ParseOptions{Symbols: c.Topo.SortedNames()})
	if err != nil {
		return nil, err
	}
	return Compile(c.Topo, pol, c.Opts)
}

// ProbePeriod returns the configured probe period.
func (c *Compiled) ProbePeriod() time.Duration {
	return time.Duration(c.Opts.ProbePeriodNs)
}

// probeWireBytes estimates the wire size of one probe: origin (2B),
// pid (1B), version (2B), tag (tag bits rounded up), plus 2 bytes per
// metric — matching the compact fixed-point encodings data planes use.
func (c *Compiled) probeWireBytes() int {
	tagBytes := (c.PG.TagBits() + 7) / 8
	if tagBytes == 0 {
		tagBytes = 1
	}
	return 2 + 1 + 2 + tagBytes + 2*len(c.Analysis.MV)
}

// packedProbeHeaderBytes is the fixed overhead of one packed probe: a
// 2-byte entry count plus a 2-byte era/flags word. The per-entry
// payload reuses Stats.ProbeBytes, so packing amortizes both the L2
// framing and this header across every origin advertised on the port.
const packedProbeHeaderBytes = 4

// PackedProbeBytes returns the payload wire size of a packed probe
// carrying n per-origin entries (n may be 0: a liveness heartbeat).
func (c *Compiled) PackedProbeBytes(n int) int {
	return packedProbeHeaderBytes + n*c.Stats.ProbeBytes
}

// Describe renders a human-readable compilation report.
func (c *Compiled) Describe() string {
	s := c.Stats
	return fmt.Sprintf(
		"compiled %q on %s\n  %s\n  pids=%d mv=%v tagBits=%d probeBytes=%d\n  state: max=%dB mean=%.0fB total=%dB\n  probe period=%v flowlet timeout=%v\n",
		c.Policy.String(), c.Topo.String(), c.PG.String(),
		s.Pids, c.Analysis.MV, s.TagBits, s.ProbeBytes,
		s.MaxStateBytes, s.MeanStateBytes, s.TotalStateBytes,
		time.Duration(c.Opts.ProbePeriodNs), time.Duration(c.Opts.FlowletTimeoutNs))
}
