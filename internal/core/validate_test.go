package core

import (
	"math/rand"
	"testing"

	"contra/internal/policy"
	"contra/internal/topo"
)

func TestValidateEveryCatalogPolicyOnEveryTestTopology(t *testing.T) {
	topos := []*topo.Graph{
		topo.Fig4Square(), topo.Fig5Diamond(), topo.Fig6(), topo.Fig8Zigzag(),
		topo.Abilene(), topo.Fattree(4, 0), topo.PaperDataCenter(),
	}
	for _, g := range topos {
		// The catalog instantiates link policies (P6/P7) over the
		// first two names, which must be adjacent switches.
		var names []string
		for _, l := range g.Links() {
			a, b := g.Node(l.A), g.Node(l.B)
			if a.Kind == topo.Switch && b.Kind == topo.Switch {
				names = append(names, a.Name, b.Name)
				break
			}
		}
		for _, n := range g.SortedNames() {
			if n != names[0] && n != names[1] {
				names = append(names, n)
			}
		}
		for name, pol := range policy.Catalog(names) {
			c, err := Compile(g, pol, Options{})
			if err != nil {
				t.Errorf("%s on %s: compile: %v", name, g.Name, err)
				continue
			}
			if err := c.Validate(); err != nil {
				t.Errorf("%s on %s: %v", name, g.Name, err)
			}
			if c.edgeCount() == 0 {
				t.Errorf("%s on %s: empty product graph", name, g.Name)
			}
		}
	}
}

func TestValidateRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		g := topo.RandomConnected(8+rng.Intn(24), 3.5, int64(trial))
		names := g.SortedNames()
		a := names[rng.Intn(len(names))]
		b := names[rng.Intn(len(names))]
		policies := []string{
			"minimize(path.util)",
			"minimize((path.len, path.util))",
			"minimize(if .* " + a + " .* then path.util else inf)",
			"minimize(if " + a + " .* " + b + " then 0 else if .* then path.len else inf)",
		}
		for _, src := range policies {
			pol, err := policy.Parse(src, policy.ParseOptions{Symbols: names})
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			c, err := Compile(g, pol, Options{})
			if err != nil {
				t.Fatalf("compile %q on %s: %v", src, g.Name, err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("validate %q on %s: %v", src, g.Name, err)
			}
		}
	}
}
