package core

import (
	"fmt"

	"contra/internal/pg"
)

// Validate checks the structural invariants of the compiled artifact —
// the properties §4.2 relies on for policy compliance. It returns the
// first violation found, or nil. The compiler's tests run it on every
// compilation; it is also available to downstream users as a sanity
// gate before deployment.
//
// Invariants:
//  1. Every switch program's virtual nodes live on that switch.
//  2. Every InTransition entry corresponds to a product-graph edge
//     whose source is at a neighboring switch.
//  3. Every ProbeOut port leads to a switch holding the product-graph
//     successor of the virtual node.
//  4. Origins' probe-sending states are at their own switch, and carry
//     one pid per probe class.
//  5. Tag assignments are unique per switch and within the advertised
//     tag-bit budget.
func (c *Compiled) Validate() error {
	pids := c.Analysis.NumPids()
	for sw, sp := range c.Switches {
		name := c.Topo.Node(sw).Name
		seenTags := make(map[int32]bool)
		for _, v := range sp.VNodes {
			node := c.PG.Node(v)
			if node.Topo != sw {
				return fmt.Errorf("core: %s lists virtual node %d of switch %s",
					name, v, c.Topo.Node(node.Topo).Name)
			}
			if seenTags[node.LocalTag] {
				return fmt.Errorf("core: %s has duplicate local tag %d", name, node.LocalTag)
			}
			seenTags[node.LocalTag] = true
			if bits := c.PG.TagBits(); bits > 0 && int(node.LocalTag) >= 1<<bits {
				return fmt.Errorf("core: %s tag %d exceeds %d-bit budget", name, node.LocalTag, bits)
			}
		}
		for u, v := range sp.InTransition {
			if c.PG.Node(v).Topo != sw {
				return fmt.Errorf("core: %s transition target %d not local", name, v)
			}
			got, ok := c.PG.Transition(u, sw)
			if !ok || got != v {
				return fmt.Errorf("core: %s transition %d->%d not a product graph edge", name, u, v)
			}
			uTopo := c.PG.Node(u).Topo
			if c.Topo.PortTo(sw, uTopo) < 0 {
				return fmt.Errorf("core: %s transition source %s not adjacent",
					name, c.Topo.Node(uTopo).Name)
			}
		}
		for v, ports := range sp.ProbeOut {
			if c.PG.Node(v).Topo != sw {
				return fmt.Errorf("core: %s probe-out vnode %d not local", name, v)
			}
			for _, port := range ports {
				if port < 0 || port >= len(c.Topo.Ports(sw)) {
					return fmt.Errorf("core: %s probe port %d out of range", name, port)
				}
				peer := c.Topo.Ports(sw)[port].Peer
				if _, ok := c.PG.Transition(v, peer); !ok {
					return fmt.Errorf("core: %s probe port %d leads to %s without a PG edge",
						name, port, c.Topo.Node(peer).Name)
				}
			}
		}
		if sp.Origin != nil {
			if c.PG.Node(sp.Origin.VNode).Topo != sw {
				return fmt.Errorf("core: %s origin vnode not local", name)
			}
			if !c.PG.Node(sp.Origin.VNode).Origin {
				return fmt.Errorf("core: %s origin vnode is not a probe-sending state", name)
			}
			if len(sp.Origin.Pids) != pids {
				return fmt.Errorf("core: %s originates %d pids, policy has %d",
					name, len(sp.Origin.Pids), pids)
			}
		}
	}
	return nil
}

// edgeCount returns the number of product-graph edges (diagnostics).
func (c *Compiled) edgeCount() int {
	total := 0
	for v := 0; v < c.PG.NumNodes(); v++ {
		total += len(c.PG.Out(pg.NodeID(v)))
	}
	return total
}
