package core

import (
	"contra/internal/policy"
	"contra/internal/topo"
)

// LinkMetrics supplies ground-truth per-directed-link metrics to the
// Oracle: utilization of the a→b direction in [0,1]. Latency and hop
// count come from the topology itself.
type LinkMetrics func(from, to topo.NodeID) float64

// Oracle computes the optimal policy-compliant route by brute force:
// it enumerates simple paths (bounded by maxHops), evaluates the
// reference rank of each, and returns the best rank with every path
// achieving it. The compiled protocol must converge to one of these
// paths under stable metrics — this is the "Optimal" objective of
// Figure 1, and the ground truth for the convergence tests.
func (c *Compiled) Oracle(src, dst topo.NodeID, util LinkMetrics, maxHops int) (policy.Rank, []topo.Path) {
	best := policy.Infinite()
	var bestPaths []topo.Path
	for _, p := range c.Topo.AllSimplePaths(src, dst, maxHops, 0) {
		info := policy.PathInfo{Nodes: c.Topo.Names(p)}
		var latNs float64
		for i := 0; i+1 < len(p); i++ {
			if u := util(p[i], p[i+1]); u > info.Util {
				info.Util = u
			}
			latNs += float64(c.Topo.LinkBetween(p[i], p[i+1]).Delay)
		}
		info.Lat = latNs / 1e9
		r := c.Policy.RankPath(info)
		switch cmp := r.Cmp(best); {
		case cmp < 0:
			best = r
			bestPaths = bestPaths[:0]
			bestPaths = append(bestPaths, p)
		case cmp == 0 && !r.IsInf():
			bestPaths = append(bestPaths, p)
		}
	}
	return best, bestPaths
}
