package core

import (
	"strings"
	"testing"

	"contra/internal/pg"
	"contra/internal/policy"
	"contra/internal/topo"
)

func compile(t *testing.T, g *topo.Graph, src string) *Compiled {
	t.Helper()
	pol, err := policy.Parse(src, policy.ParseOptions{Symbols: g.SortedNames()})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Compile(g, pol, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestCompileMinUtil(t *testing.T) {
	g := topo.Fig4Square()
	c := compile(t, g, "minimize(path.util)")
	if c.Stats.Pids != 1 || c.Stats.TagBits != 0 {
		t.Fatalf("MU pids=%d tagBits=%d, want 1/0", c.Stats.Pids, c.Stats.TagBits)
	}
	for _, x := range g.Switches() {
		sp := c.Switches[x]
		if sp == nil {
			t.Fatalf("no program for %s", g.Node(x).Name)
		}
		if sp.Origin == nil {
			t.Fatalf("%s should originate probes under MU", g.Node(x).Name)
		}
		if sp.ReachableOrigins != len(g.Switches()) {
			t.Fatalf("%s reachable origins = %d, want %d", g.Node(x).Name,
				sp.ReachableOrigins, len(g.Switches()))
		}
		if len(sp.VNodes) != 1 {
			t.Fatalf("%s vnodes = %d, want 1", g.Node(x).Name, len(sp.VNodes))
		}
		// Probe multicast must go to every neighbor (PG == topology).
		v := sp.VNodes[0]
		if len(sp.ProbeOut[v]) != len(g.SwitchNeighbors(x)) {
			t.Fatalf("%s probe ports = %v, want %d neighbors",
				g.Node(x).Name, sp.ProbeOut[v], len(g.SwitchNeighbors(x)))
		}
	}
}

func TestCompileTransitionsMatchPG(t *testing.T) {
	g := topo.Fig6()
	c := compile(t, g, "minimize(if A B D then 0 else if B .* D then path.util else inf)")
	for sw, sp := range c.Switches {
		for u, v := range sp.InTransition {
			if c.PG.Node(v).Topo != sw {
				t.Fatalf("transition target not local to %s", g.Node(sw).Name)
			}
			got, ok := c.PG.Transition(u, sw)
			if !ok || got != v {
				t.Fatalf("InTransition[%d]=%d disagrees with PG (%d, %v)", u, v, got, ok)
			}
		}
		for v, ports := range sp.ProbeOut {
			if c.PG.Node(v).Topo != sw {
				t.Fatalf("probe-out vnode not local")
			}
			if len(ports) != len(c.PG.Out(v)) {
				t.Fatalf("probe ports = %d, PG out edges = %d", len(ports), len(c.PG.Out(v)))
			}
			for _, port := range ports {
				peer := g.Ports(sw)[port].Peer
				if _, ok := c.PG.Transition(v, peer); !ok {
					t.Fatalf("probe port %d leads to %s which is not a PG successor",
						port, g.Node(peer).Name)
				}
			}
		}
	}
}

func TestProbePeriodRespectsRTT(t *testing.T) {
	g := topo.Abilene()
	c := compile(t, g, "minimize(path.util)")
	if c.Opts.ProbePeriodNs < g.MaxSwitchRTT()/2 {
		t.Fatalf("probe period %d < RTT/2 %d (§5.2)", c.Opts.ProbePeriodNs, g.MaxSwitchRTT()/2)
	}
	// Explicit override wins.
	pol := policy.MustParse("minimize(path.util)")
	c2, err := Compile(g, pol, Options{ProbePeriodNs: 123456})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Opts.ProbePeriodNs != 123456 {
		t.Fatal("override ignored")
	}
}

func TestStateAccountingShape(t *testing.T) {
	// Larger topologies need more state; regex policies need more than
	// MU; CA (two pids) needs more than MU.
	small := compile(t, topo.Fattree(4, 0), "minimize(path.util)")
	big := compile(t, topo.Fattree(8, 0), "minimize(path.util)")
	if small.Stats.MaxStateBytes >= big.Stats.MaxStateBytes {
		t.Fatalf("state should grow with topology: %d vs %d",
			small.Stats.MaxStateBytes, big.Stats.MaxStateBytes)
	}
	g := topo.Fattree(4, 0)
	mu := compile(t, g, "minimize(path.util)")
	ca := compile(t, g, "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))")
	wp := compile(t, g, "minimize(if .* (c0 + c1) .* then path.util else inf)")
	if ca.Stats.MaxStateBytes <= mu.Stats.MaxStateBytes {
		t.Fatalf("CA state (%d) should exceed MU (%d): extra pid",
			ca.Stats.MaxStateBytes, mu.Stats.MaxStateBytes)
	}
	if wp.Stats.MaxStateBytes <= mu.Stats.MaxStateBytes {
		t.Fatalf("WP state (%d) should exceed MU (%d): tags",
			wp.Stats.MaxStateBytes, mu.Stats.MaxStateBytes)
	}
	// Magnitude: the paper reports < 70 kB per switch at 500 switches;
	// at fattree-8 (80 switches) we should be well under that.
	if mu.Stats.MaxStateBytes > 70_000 {
		t.Fatalf("MU state per switch = %dB, implausibly large", mu.Stats.MaxStateBytes)
	}
}

func TestGenerateP4(t *testing.T) {
	g := topo.Fig6()
	c := compile(t, g, "minimize(if A B D then 0 else if B .* D then path.util else inf)")
	src := c.GenerateP4(g.MustNode("B"))
	for _, want := range []string{
		"contra_probe_t", "contra_tag_t", "tag_transition", "probe_mcast",
		"fwd_version", "flowlet_port", "loop_minttl", "V1Switch",
		"mv_util",                  // the policy's metric vector
		"fold_metrics",             // UPDATEMVEC
		"probe_compare_and_update", // PROCESSPROBE core
		"best_tag",                 // BestT update
	} {
		if !strings.Contains(src, want) {
			t.Errorf("P4 output missing %q", want)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Fatalf("unbalanced braces in generated P4:\n%s", src)
	}
	// Deterministic output.
	if src != c.GenerateP4(g.MustNode("B")) {
		t.Fatal("P4 generation is not deterministic")
	}
	// Unknown switch yields empty.
	if got := c.GenerateP4(topo.NodeID(9999)); got != "" {
		t.Fatal("expected empty program for unknown switch")
	}
}

func TestOracle(t *testing.T) {
	g := topo.Fig4Square()
	c := compile(t, g, "minimize(path.util)")
	// Make S-D hot; S-A-D the best.
	util := func(a, b topo.NodeID) float64 {
		key := g.Node(a).Name + g.Node(b).Name
		switch key {
		case "SD", "DS":
			return 0.9
		case "SA", "AS":
			return 0.1
		case "AD", "DA":
			return 0.2
		default:
			return 0.5
		}
	}
	rank, paths := c.Oracle(g.MustNode("S"), g.MustNode("D"), util, 4)
	if rank.IsInf() || rank.Cmp(policy.Finite(0.2)) != 0 {
		t.Fatalf("oracle rank = %v, want 0.2", rank)
	}
	if len(paths) != 1 || strings.Join(g.Names(paths[0]), "") != "SAD" {
		t.Fatalf("oracle path = %v, want SAD", paths)
	}
}

func TestOracleRespectsPolicyCompliance(t *testing.T) {
	g := topo.Fig4Square()
	c := compile(t, g, "minimize(if .* B A .* then inf else path.util)")
	util := func(a, b topo.NodeID) float64 { return 0.5 }
	_, paths := c.Oracle(g.MustNode("S"), g.MustNode("D"), util, 4)
	for _, p := range paths {
		names := strings.Join(g.Names(p), "")
		if strings.Contains(names, "BA") {
			t.Fatalf("oracle returned forbidden path %s", names)
		}
	}
}

func TestCompileRejectsAllInf(t *testing.T) {
	g := topo.Fig4Square()
	pol := policy.MustParse("minimize(inf)")
	if _, err := Compile(g, pol, Options{}); err == nil {
		t.Fatal("all-inf policy must fail to compile")
	}
}

func TestCompileRejectsUnsatisfiablePolicy(t *testing.T) {
	// Requiring a link that does not exist on the topology prunes the
	// whole product graph; the compiler must say so rather than emit
	// programs that can never route.
	g := topo.PaperDataCenter() // leaves l0 and l1 are not adjacent
	pol := policy.MustParse("minimize(if .* l0 l1 .* then path.util else inf)",
		policy.ParseOptions{Symbols: g.SortedNames()})
	_, err := Compile(g, pol, Options{})
	if err == nil {
		t.Fatal("unsatisfiable policy must fail to compile")
	}
}

func TestWaypointOriginsPruned(t *testing.T) {
	// With the Fig6 ABD/B.*D policy, only D is a valid destination:
	// other switches must not originate probes.
	g := topo.Fig6()
	c := compile(t, g, "minimize(if A B D then 0 else if B .* D then path.util else inf)")
	for _, name := range []string{"A", "B", "C"} {
		if c.Switches[g.MustNode(name)].Origin != nil {
			t.Errorf("%s should not originate probes", name)
		}
	}
	if c.Switches[g.MustNode("D")].Origin == nil {
		t.Fatal("D must originate probes")
	}
	if got := len(c.Switches[g.MustNode("D")].Origin.Pids); got != 1 {
		t.Fatalf("pids = %d, want 1", got)
	}
}

func TestProbeWireSize(t *testing.T) {
	g := topo.Fig4Square()
	mu := compile(t, g, "minimize(path.util)")
	ca := compile(t, g, "minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))")
	if mu.Stats.ProbeBytes <= 0 {
		t.Fatal("probe bytes must be positive")
	}
	if ca.Stats.ProbeBytes <= mu.Stats.ProbeBytes {
		t.Fatalf("CA probes (%dB) should exceed MU probes (%dB): larger mv",
			ca.Stats.ProbeBytes, mu.Stats.ProbeBytes)
	}
}

func TestDescribeMentionsEverything(t *testing.T) {
	g := topo.Fig4Square()
	c := compile(t, g, "minimize(path.util)")
	d := c.Describe()
	for _, want := range []string{"pids=1", "probe period", "state:"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

var _ = pg.NodeID(0) // keep import when test list shrinks
