package chaos

import (
	"testing"

	"contra/internal/core"
	"contra/internal/dataplane"
	"contra/internal/policy"
	"contra/internal/sim"
	"contra/internal/topo"
)

// build compiles a policy on g and deploys a Contra fleet.
func build(t *testing.T, g *topo.Graph, src string) (*sim.Engine, *sim.Network, *dataplane.Fleet, *core.Compiled) {
	t.Helper()
	pol, err := policy.Parse(src, policy.ParseOptions{Symbols: g.SortedNames()})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	comp, err := core.Compile(g, pol, core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e := sim.NewEngine(42)
	n := sim.NewNetwork(e, g, sim.Config{})
	fleet := dataplane.DeployFleet(n, comp)
	n.Start()
	return e, n, fleet, comp
}

// firstCore returns the first core switch of a hierarchical topology.
func firstCore(t *testing.T, g *topo.Graph) topo.NodeID {
	t.Helper()
	for _, id := range g.Switches() {
		if g.Node(id).Role == topo.RoleCore {
			return id
		}
	}
	t.Fatal("no core switch")
	return -1
}

func TestSwitchDownRoutesAroundAndRebootFlushes(t *testing.T) {
	g := topo.Fattree(4, 0)
	e, n, fleet, comp := build(t, g, "minimize(path.util)")
	period := comp.Opts.ProbePeriodNs
	core0 := firstCore(t, g)

	down := 20 * period
	up := 40 * period
	rt, err := Arm(n, fleet, Plan{
		Seed:  1,
		Nodes: []NodeEvent{{At: down, Node: core0}, {At: up, Node: core0, Up: true}},
	}, period)
	if err != nil {
		t.Fatalf("arm: %v", err)
	}
	if rt == nil {
		t.Fatal("non-empty plan armed to a nil runtime")
	}

	e.Run(12 * period)
	victim := fleet.Router(core0)
	if len(victim.LiveRoutes()) == 0 {
		t.Fatal("warmed-up core switch has no routes")
	}

	// Past the failure plus the detection window: the fabric must have
	// routed around the dead core, and its own tables (flushed only at
	// reboot) must no longer be used by neighbors.
	e.Run(down + 8*period)
	if !n.NodeDown(core0) {
		t.Fatal("switch_down did not mark the node down")
	}
	e00, e10 := g.MustNode("e0_0"), g.MustNode("e1_0")
	src := fleet.Router(e00)
	if !src.HasRoute(e10) {
		t.Fatal("no cross-pod route while one core is down (three remain)")
	}

	// Right after reboot the router restarts cold: tables flushed.
	e.Run(up + 1)
	if got := len(victim.LiveRoutes()); got != 0 {
		t.Fatalf("rebooted switch kept %d live routes, want 0 (cold start)", got)
	}
	// And it warms back up from fresh probes.
	e.Run(up + 12*period)
	if len(victim.LiveRoutes()) == 0 {
		t.Fatal("rebooted switch never re-learned routes")
	}
}

func TestProbeLossDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) (seen, dropped int64) {
		g := topo.Fattree(4, 0)
		e, n, fleet, comp := build(t, g, "minimize(path.util)")
		var links []topo.LinkID
		for _, l := range g.Links() {
			links = append(links, l.ID)
		}
		_, err := Arm(n, fleet, Plan{
			Seed: seed,
			Loss: []LossEvent{{At: 0, Links: links, Rate: 0.3}},
		}, comp.Opts.ProbePeriodNs)
		if err != nil {
			t.Fatalf("arm: %v", err)
		}
		e.Run(30 * comp.Opts.ProbePeriodNs)
		return n.ProbeLossStats()
	}
	s1, d1 := run(7)
	s2, d2 := run(7)
	if s1 != s2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", s1, d1, s2, d2)
	}
	if s1 == 0 || d1 == 0 {
		t.Fatalf("loss injection idle: seen=%d dropped=%d", s1, d1)
	}
	got := float64(d1) / float64(s1)
	if got < 0.2 || got > 0.4 {
		t.Fatalf("realized loss rate %.3f far from configured 0.3", got)
	}
	s3, d3 := run(8)
	if s3 == s1 && d3 == d1 {
		t.Fatalf("different seeds produced identical loss stream (%d,%d)", s3, d3)
	}
}

func TestPolicySwapConvergenceWindow(t *testing.T) {
	g := topo.Fattree(4, 0)
	e, n, fleet, comp := build(t, g, "minimize(path.util)")
	period := comp.Opts.ProbePeriodNs
	swapAt := 20 * period
	rt, err := Arm(n, fleet, Plan{
		Seed:  1,
		Swaps: []SwapEvent{{At: swapAt, Source: "minimize(path.len)"}},
	}, period)
	if err != nil {
		t.Fatalf("arm: %v", err)
	}
	e.Run(60 * period)

	if fleet.Era() != 1 {
		t.Fatalf("era = %d after one swap, want 1", fleet.Era())
	}
	if got := fleet.Compiled().Policy.String(); got != "minimize(path.len)" {
		t.Fatalf("fleet runs %q after swap", got)
	}
	rep := rt.Report()
	if len(rep.Swaps) != 1 {
		t.Fatalf("got %d swap windows, want 1", len(rep.Swaps))
	}
	w := rep.Swaps[0]
	if w.AtNs != swapAt {
		t.Fatalf("window at %d, want %d", w.AtNs, swapAt)
	}
	if w.Pairs == 0 {
		t.Fatal("swap snapshot saw no live routes on a warmed-up fabric")
	}
	if w.ConvergenceNs <= 0 {
		t.Fatalf("convergence window = %d, want positive", w.ConvergenceNs)
	}
	if w.ConvergenceNs > 40*period {
		t.Fatalf("convergence window %d never closed inside the run", w.ConvergenceNs)
	}
	// The swapped fabric must actually route: shortest-path ranks now.
	e00, e10 := g.MustNode("e0_0"), g.MustNode("e1_0")
	if !fleet.Router(e00).HasRoute(e10) {
		t.Fatal("no route after swap converged")
	}
}

func TestSwapDuringOutageConvergesOnSurvivingFabric(t *testing.T) {
	// A swap installed while a switch is down (and stays down) must
	// not wait on routes involving the dead switch: the snapshot
	// excludes them even when their entries are still inside the
	// failure-detection window, so the window closes once the
	// surviving fabric re-converges.
	g := topo.Fattree(4, 0)
	e, n, fleet, comp := build(t, g, "minimize(path.util)")
	period := comp.Opts.ProbePeriodNs
	core0 := firstCore(t, g)
	down := 20 * period
	swapAt := down + 2*period // inside the detection window, no switch_up
	rt, err := Arm(n, fleet, Plan{
		Seed:  1,
		Nodes: []NodeEvent{{At: down, Node: core0}},
		Swaps: []SwapEvent{{At: swapAt, Source: "minimize(path.len)"}},
	}, period)
	if err != nil {
		t.Fatalf("arm: %v", err)
	}
	e.Run(80 * period)
	w := rt.Report().Swaps[0]
	if w.Pairs == 0 {
		t.Fatal("snapshot empty: surviving fabric had live routes")
	}
	if w.ConvergenceNs <= 0 {
		t.Fatalf("swap during a permanent outage never converged: %+v", w)
	}
}

func TestSwapOnColdFabricReportsNoWindow(t *testing.T) {
	// A swap that installs before any route is live (inside the
	// warm-up) has nothing to re-converge: it must not fabricate a
	// one-period convergence window out of an empty snapshot.
	g := topo.Fattree(4, 0)
	e, n, fleet, comp := build(t, g, "minimize(path.util)")
	period := comp.Opts.ProbePeriodNs
	rt, err := Arm(n, fleet, Plan{
		Seed:  1,
		Swaps: []SwapEvent{{At: 1, Source: "minimize(path.len)"}},
	}, period)
	if err != nil {
		t.Fatalf("arm: %v", err)
	}
	e.Run(30 * period)
	if fleet.Era() != 1 {
		t.Fatal("cold swap did not install")
	}
	w := rt.Report().Swaps[0]
	if w.Pairs != 0 || w.ConvergenceNs != -1 {
		t.Fatalf("cold swap reported a window: %+v", w)
	}
}

func TestSwapNeverFiredReportsUnconverged(t *testing.T) {
	g := topo.Fattree(4, 0)
	e, n, fleet, comp := build(t, g, "minimize(path.util)")
	period := comp.Opts.ProbePeriodNs
	rt, err := Arm(n, fleet, Plan{
		Seed:  1,
		Swaps: []SwapEvent{{At: 1000 * period, Source: "minimize(path.len)"}},
	}, period)
	if err != nil {
		t.Fatalf("arm: %v", err)
	}
	e.Run(10 * period) // stop long before the swap
	w := rt.Report().Swaps[0]
	if w.ConvergenceNs != -1 || w.ConvergedAtNs != -1 || w.Pairs != 0 {
		t.Fatalf("unfired swap reported %+v, want unconverged empty window", w)
	}
}

func TestArmRejectsSwapWithoutFleet(t *testing.T) {
	g := topo.Fattree(4, 0)
	e, n, fleet, comp := build(t, g, "minimize(path.util)")
	_ = e
	_ = fleet
	_, err := Arm(n, nil, Plan{Swaps: []SwapEvent{{At: 1, Source: "minimize(path.len)"}}},
		comp.Opts.ProbePeriodNs)
	if err == nil {
		t.Fatal("swap plan without a fleet must fail to arm")
	}
}

func TestEmptyPlanArmsToNil(t *testing.T) {
	g := topo.Fattree(4, 0)
	_, n, fleet, comp := build(t, g, "minimize(path.util)")
	rt, err := Arm(n, fleet, Plan{}, comp.Opts.ProbePeriodNs)
	if err != nil || rt != nil {
		t.Fatalf("empty plan: rt=%v err=%v, want nil/nil", rt, err)
	}
	if rep := rt.Report(); len(rep.Swaps) != 0 || rep.ProbeLossSeen != 0 {
		t.Fatalf("nil runtime report not zero: %+v", rep)
	}
}
