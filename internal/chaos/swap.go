package chaos

import (
	"fmt"

	"contra/internal/core"
	"contra/internal/dataplane"
	"contra/internal/sim"
	"contra/internal/topo"
)

// swapRun is one armed policy swap and its convergence monitor.
type swapRun struct {
	at     int64
	source string
	period int64
	net    *sim.Network
	fleet  *dataplane.Fleet

	installed   bool
	pairs       []routePair // routes live immediately before install
	convergedAt int64       // absolute ns; -1 while unconverged
	cancelPoll  func()
}

// routePair is one (switch, destination) route the monitor requires to
// be live again before declaring convergence.
type routePair struct {
	sw, dst topo.NodeID
}

// armSwap pre-compiles the swap target (so the event-time action is a
// pure table install, like a controller pushing a staged artifact) and
// schedules the install plus its convergence monitor.
func armSwap(n *sim.Network, fleet *dataplane.Fleet, ev SwapEvent, periodNs int64) (*swapRun, error) {
	comp, err := fleet.Compiled().Recompile(ev.Source)
	if err != nil {
		return nil, fmt.Errorf("chaos: policy_swap %q: %v", ev.Source, err)
	}
	sr := &swapRun{
		at:          ev.At,
		source:      ev.Source,
		period:      periodNs,
		net:         n,
		fleet:       fleet,
		convergedAt: -1,
	}
	n.Eng.At(ev.At, func() { sr.install(comp) })
	return sr, nil
}

// install snapshots the live routing state, hot-swaps the fleet, and
// starts polling for re-convergence.
func (sr *swapRun) install(comp *core.Compiled) {
	// Snapshot BEFORE the install: these are the routes the fabric had
	// under the old policy, minus any involving currently-failed gear
	// — a swap during a switch outage should not wait on routes the
	// outage already took away. Both endpoints matter: a failed switch
	// can't source routes, and routes toward it (whose entries may
	// still be inside the failure-detection window, hence "live") can
	// never re-form while it stays down.
	for sw, r := range sr.fleet.Routers() {
		if sr.net.NodeDown(sw) {
			continue
		}
		for _, dst := range r.LiveRoutes() {
			if sr.net.NodeDown(dst) {
				continue
			}
			sr.pairs = append(sr.pairs, routePair{sw: sw, dst: dst})
		}
	}
	sr.fleet.Install(comp)
	sr.installed = true
	// A swap installed on a cold fabric (no live routes yet — e.g.
	// scheduled inside the warm-up) has nothing to re-converge: there
	// is no measurable window, so don't poll and leave ConvergenceNs
	// at -1 rather than reporting a trivially-closed one.
	if len(sr.pairs) == 0 {
		return
	}
	// Poll on the probe-period grid: route state only changes as
	// probes arrive, so a finer poll buys nothing and a coarser one
	// overstates the window.
	sr.cancelPoll = sr.net.Eng.Every(sr.net.Eng.Now()+sr.period, sr.period, sr.poll)
}

// poll checks every snapshot pair; the first poll where all are live
// again closes the convergence window.
func (sr *swapRun) poll() {
	for _, p := range sr.pairs {
		if sr.net.NodeDown(p.sw) || !sr.fleet.Router(p.sw).HasRoute(p.dst) {
			return
		}
	}
	sr.convergedAt = sr.net.Eng.Now()
	if sr.cancelPoll != nil {
		sr.cancelPoll()
		sr.cancelPoll = nil
	}
}

// window renders the measured SwapWindow.
func (sr *swapRun) window() SwapWindow {
	w := SwapWindow{
		AtNs:          sr.at,
		Policy:        sr.source,
		Pairs:         len(sr.pairs),
		ConvergedAtNs: sr.convergedAt,
		ConvergenceNs: -1,
	}
	if sr.convergedAt >= 0 {
		w.ConvergenceNs = sr.convergedAt - sr.at
	}
	return w
}
