// Package chaos is the runtime-update and fault-injection subsystem:
// it takes a resolved Plan of chaos events — whole-switch failures and
// reboots, probabilistic probe loss, and live policy hot-swaps — arms
// them on a running simulation, and measures what the scripts exist to
// measure: the convergence window of each policy swap and the realized
// probe-loss rate.
//
// The split of responsibilities mirrors the rest of the stack: the
// simulator (internal/sim) owns the mechanisms (node-down channel
// state, probabilistic probe drops, the Rebooter seam), the data plane
// (internal/dataplane.Fleet) owns the swappable compiled-policy
// handle, the compiler (internal/core.Recompile) owns mid-run
// recompilation — and this package owns the orchestration: scheduling
// the events deterministically on the engine's calendar queue,
// pre-compiling swap targets so the event-time action is a pure
// install, snapshotting routing state around each swap, and polling
// the fabric until it re-converges.
//
// Everything is deterministic per scenario seed: probe-loss draws come
// from a dedicated RNG seeded from the plan, and the monitor's polls
// ride the same event loop as the traffic, so a chaos campaign is
// byte-identical across runs, worker counts, and shard layouts.
package chaos

import (
	"fmt"

	"contra/internal/dataplane"
	"contra/internal/sim"
	"contra/internal/topo"
)

// NodeEvent fails (Up=false) or reboots (Up=true) a switch at At.
type NodeEvent struct {
	At   int64
	Node topo.NodeID
	Up   bool
}

// LossEvent sets the probe-drop rate of a set of links at At (rate 0
// clears). A per-switch probe_loss scenario event resolves to one
// LossEvent covering every fabric link attached to the switch.
type LossEvent struct {
	At    int64
	Links []topo.LinkID
	Rate  float64
}

// SwapEvent installs a recompiled policy at At. Source is the policy
// text; compilation happens at arm time (the paper measures compile
// cost separately — Figure 9), installation at At.
type SwapEvent struct {
	At     int64
	Source string
}

// Plan is one scenario's resolved chaos script. The zero value is an
// empty plan; Arm on it is a no-op returning a nil Runtime.
type Plan struct {
	// Seed derives the probe-loss RNG; use the scenario seed so noise
	// is deterministic per seed.
	Seed  int64
	Nodes []NodeEvent
	Loss  []LossEvent
	Swaps []SwapEvent
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool {
	return len(p.Nodes) == 0 && len(p.Loss) == 0 && len(p.Swaps) == 0
}

// lossSeedMix decouples the probe-loss RNG stream from every other
// consumer of the scenario seed.
const lossSeedMix = 0x70726f6265 // "probe"

// Runtime is an armed chaos plan: it holds the swap monitors and reads
// back the fault-injection measurements after the run.
type Runtime struct {
	net   *sim.Network
	fleet *dataplane.Fleet
	swaps []*swapRun
}

// Arm schedules a plan on a running simulation. fleet may be nil for
// schemes without a swappable data plane (every baseline), in which
// case the plan must not contain swaps; probePeriodNs paces the swap
// convergence monitor. Arm must be called after the network is built
// and routers deployed, and before the engine runs past the first
// event time (scenario.Run arms right after Network.Start).
func Arm(n *sim.Network, fleet *dataplane.Fleet, plan Plan, probePeriodNs int64) (*Runtime, error) {
	if plan.Empty() {
		return nil, nil
	}
	if len(plan.Swaps) > 0 && fleet == nil {
		return nil, fmt.Errorf("chaos: policy_swap needs a contra data plane")
	}
	if probePeriodNs <= 0 {
		return nil, fmt.Errorf("chaos: probe period must be positive, got %d", probePeriodNs)
	}
	rt := &Runtime{net: n, fleet: fleet}
	for _, ev := range plan.Nodes {
		kind := sim.EvNodeDown
		if ev.Up {
			kind = sim.EvNodeUp
		}
		n.Inject(sim.NetworkEvent{At: ev.At, Kind: kind, Node: ev.Node})
	}
	if len(plan.Loss) > 0 {
		n.SetProbeLossSeed(plan.Seed ^ lossSeedMix)
		for _, ev := range plan.Loss {
			for _, id := range ev.Links {
				n.Inject(sim.NetworkEvent{At: ev.At, Kind: sim.EvProbeLoss, Link: id, Rate: ev.Rate})
			}
		}
	}
	for _, ev := range plan.Swaps {
		sr, err := armSwap(n, fleet, ev, probePeriodNs)
		if err != nil {
			return nil, err
		}
		rt.swaps = append(rt.swaps, sr)
	}
	return rt, nil
}

// SwapWindow is the measured outcome of one policy hot-swap: when it
// installed, how many (switch, destination) routes were live just
// before, and how long until every one of them was live again under
// the new policy. ConvergenceNs is the paper's runtime-update metric:
// the window during which routing was still re-forming. -1 means the
// run ended (or the swap never fired) before convergence.
type SwapWindow struct {
	AtNs          int64  `json:"at_ns"`
	Policy        string `json:"policy"`
	Pairs         int    `json:"pairs"`
	ConvergedAtNs int64  `json:"converged_at_ns"`
	ConvergenceNs int64  `json:"convergence_ns"`
}

// Report is the post-run summary of an armed plan.
type Report struct {
	Swaps []SwapWindow
	// ProbeLossSeen / ProbeLossDropped count probes offered to and
	// discarded by loss-injected channels; their ratio is the realized
	// loss rate (which converges on the configured rate as probe
	// volume grows).
	ProbeLossSeen    int64
	ProbeLossDropped int64
}

// ProbeLossFrac returns the realized probe-loss rate, 0 when no probe
// crossed a lossy channel.
func (r *Report) ProbeLossFrac() float64 {
	if r.ProbeLossSeen == 0 {
		return 0
	}
	return float64(r.ProbeLossDropped) / float64(r.ProbeLossSeen)
}

// Report collects the measurements after (or during) the run. Safe to
// call on a nil Runtime (empty plan): it returns a zero report.
func (rt *Runtime) Report() Report {
	var rep Report
	if rt == nil {
		return rep
	}
	rep.ProbeLossSeen, rep.ProbeLossDropped = rt.net.ProbeLossStats()
	for _, sr := range rt.swaps {
		rep.Swaps = append(rep.Swaps, sr.window())
	}
	return rep
}
