// Package campaign expands a declarative spec — a cartesian matrix of
// topologies × schemes × loads × event scripts × seeds — into concrete
// scenarios, fans them out across a bounded pool of worker goroutines,
// and aggregates the per-scenario results into JSON, CSV, and a
// scheme-comparison table.
//
// The execution core is Stream: it emits each Outcome as it completes
// and retains nothing, so arbitrarily large sweeps run in bounded
// memory. Run is a thin in-memory sink over it, collecting outcomes
// into a Report in expansion order; internal/dist layers shard
// partitioning, JSONL streaming, and checkpoint/resume on the same
// core.
//
// Each scenario's simulation is single-threaded and deterministic, so
// a campaign parallelizes embarrassingly: outcomes are keyed by
// expansion index, which makes the aggregate output byte-identical
// whether the campaign ran on one worker or sixteen, in one process
// or many shards.
package campaign

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"contra/internal/scenario"
)

// Script is a named scenario event script.
type Script struct {
	Name   string           `json:"name"`
	Events []scenario.Event `json:"events,omitempty"`
}

// Spec is the campaign file format: the matrix axes plus the base
// workload and protocol knobs shared by every cell.
type Spec struct {
	Name string `json:"name,omitempty"`

	// Matrix axes. Empty Scripts means one steady-state script; empty
	// Seeds means seed 1.
	Topos   []string          `json:"topos"`
	Schemes []scenario.Scheme `json:"schemes"`
	Loads   []float64         `json:"loads"`
	Scripts []Script          `json:"event_scripts,omitempty"`
	Seeds   []int64           `json:"seeds,omitempty"`

	// Base scenario knobs; Workload.Load is overridden per cell.
	Workload             scenario.Workload `json:"workload,omitempty"`
	Policy               string            `json:"policy,omitempty"`
	ProbePeriodNs        int64             `json:"probe_period_ns,omitempty"`
	FlowletTimeoutNs     int64             `json:"flowlet_timeout_ns,omitempty"`
	FailureDetectPeriods int               `json:"failure_detect_periods,omitempty"`
	BinNs                int64             `json:"bin_ns,omitempty"`
	TrackLoops           bool              `json:"track_loops,omitempty"`

	// Probe aggregation knobs, shared by every cell (see the scenario
	// fields of the same names): multi-origin probe packing and delta
	// suppression with a forced refresh every RefreshEvery periods.
	ProbePacking bool    `json:"probe_packing,omitempty"`
	SuppressEps  float64 `json:"suppress_eps,omitempty"`
	RefreshEvery int     `json:"refresh_every,omitempty"`

	// Observability knobs, shared by every cell (see the scenario
	// fields of the same names). "off" for TraceLevel is normalized to
	// absent so the expansion — and every scenario Key — is identical
	// to a spec that never mentioned tracing.
	TraceLevel    string `json:"trace_level,omitempty"`
	ClassStats    bool   `json:"class_stats,omitempty"`
	ElephantBytes int64  `json:"elephant_bytes,omitempty"`

	// MetricsIntervalNs enables time-series telemetry sampling in every
	// cell (0 = off, the default). Off leaves every scenario Key — and
	// so every golden digest — identical to a spec that never mentioned
	// metrics.
	MetricsIntervalNs int64 `json:"metrics_interval_ns,omitempty"`

	// CellTimeoutNs bounds each cell's wall-clock execution (0 = no
	// bound). A cell that exceeds it is recorded as a failed outcome
	// instead of hanging its worker. This is an execution knob, not a
	// scenario parameter: it never enters scenario keys, checkpoints,
	// or golden digests.
	CellTimeoutNs int64 `json:"cell_timeout_ns,omitempty"`

	// Record captures each cell's materialized workload as a v1 flow
	// trace (the -record-dir flag). Go-only and excluded from scenario
	// keys: recording observes cells, it never changes them, so a
	// recorded campaign checkpoints and digests identically to an
	// unrecorded one.
	Record bool `json:"-"`
}

// CellTimeout returns the spec's per-cell wall-clock budget as a
// Duration (0 = none).
func (s *Spec) CellTimeout() time.Duration { return time.Duration(s.CellTimeoutNs) }

// Parse decodes a campaign spec, rejecting unknown fields.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: %v", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and decodes a campaign spec file.
func LoadFile(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

func (s *Spec) validate() error {
	if len(s.Topos) == 0 {
		return fmt.Errorf("campaign %q: no topos", s.Name)
	}
	if len(s.Schemes) == 0 {
		return fmt.Errorf("campaign %q: no schemes", s.Name)
	}
	switch s.Workload.Kind {
	case scenario.WorkloadCBR, scenario.WorkloadTrace, scenario.WorkloadCohorts:
		// CBR sets an absolute rate, a trace replays recorded traffic,
		// and cohorts carry their own per-cohort rates: a load axis is
		// optional for all three (for cohorts it scales every cohort;
		// for traces it is a label matching the recording campaign).
	default:
		if len(s.Loads) == 0 {
			return fmt.Errorf("campaign %q: no loads", s.Name)
		}
	}
	if s.CellTimeoutNs < 0 {
		return fmt.Errorf("campaign %q: negative cell_timeout_ns", s.Name)
	}
	return s.checkAxisDuplicates()
}

// checkAxisDuplicates rejects repeated values on any matrix axis. A
// duplicate would expand to two scenarios with identical canonical
// keys at different indices — redundant compute in any mode, and fatal
// only at merge time in the sharded mode, after the sweep has already
// been paid for — so it fails upfront instead (from Expand, not only
// Parse, to cover Go-constructed specs).
func (s *Spec) checkAxisDuplicates() error {
	scripts := make([]string, len(s.Scripts))
	for i, sc := range s.Scripts {
		scripts[i] = sc.Name
	}
	for axis, values := range map[string][]string{
		"topo":         s.Topos,
		"scheme":       schemeStrings(s.Schemes),
		"load":         floatStrings(s.Loads),
		"seed":         seedStrings(s.Seeds),
		"event script": scripts,
	} {
		seen := map[string]bool{}
		for _, v := range values {
			if seen[v] {
				return fmt.Errorf("campaign %q: duplicate %s %q", s.Name, axis, v)
			}
			seen[v] = true
		}
	}
	return nil
}

func schemeStrings(ss []scenario.Scheme) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = string(s)
	}
	return out
}

func floatStrings(fs []float64) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = trimFloat(f)
	}
	return out
}

func seedStrings(is []int64) []string {
	out := make([]string, len(is))
	for i, v := range is {
		out[i] = strconv.FormatInt(v, 10)
	}
	return out
}

// Size returns the number of scenarios the spec expands to.
func (s *Spec) Size() int {
	return len(s.Topos) * len(s.Schemes) * max(len(s.Loads), 1) *
		max(len(s.Scripts), 1) * max(len(s.Seeds), 1)
}

// Expand materializes the cartesian matrix in a fixed order: topo,
// scheme, load, script, seed — slowest axis first. Every scenario is
// validated before any runs, so a bad cell fails the campaign upfront.
// Duplicate axis values are rejected here too (not only in Parse), so
// Go-constructed specs cannot expand to two scenarios sharing one
// canonical key.
func (s *Spec) Expand() ([]scenario.Scenario, error) {
	if err := s.checkAxisDuplicates(); err != nil {
		return nil, err
	}
	loads := s.Loads
	if len(loads) == 0 {
		loads = []float64{0} // CBR campaigns have no load axis
	}
	scripts := s.Scripts
	if len(scripts) == 0 {
		scripts = []Script{{Name: "steady"}}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	var out []scenario.Scenario
	for _, tp := range s.Topos {
		for _, scheme := range s.Schemes {
			for _, load := range loads {
				for _, script := range scripts {
					for _, seed := range seeds {
						w := s.Workload
						w.Load = load
						sc := scenario.Scenario{
							Name: fmt.Sprintf("%s/%s/load%s/%s/seed%d",
								tp, scheme, trimFloat(load), script.Name, seed),
							TopoSpec:             tp,
							Scheme:               scheme,
							Policy:               s.Policy,
							Seed:                 seed,
							Workload:             w,
							Events:               script.Events,
							Script:               script.Name,
							ProbePeriodNs:        s.ProbePeriodNs,
							FlowletTimeoutNs:     s.FlowletTimeoutNs,
							FailureDetectPeriods: s.FailureDetectPeriods,
							ProbePacking:         s.ProbePacking,
							SuppressEps:          s.SuppressEps,
							RefreshEvery:         s.RefreshEvery,
							BinNs:                s.BinNs,
							TrackLoops:           s.TrackLoops,
							ClassStats:           s.ClassStats,
							ElephantBytes:        s.ElephantBytes,
							MetricsIntervalNs:    s.MetricsIntervalNs,
						}
						if s.TraceLevel != "" && s.TraceLevel != "off" {
							sc.TraceLevel = s.TraceLevel
						}
						sc.RecordFlows = s.Record
						if err := sc.Validate(); err != nil {
							return nil, err
						}
						out = append(out, sc)
					}
				}
			}
		}
	}
	return out, nil
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Job pairs a scenario with its position in the spec's expansion
// order. The index is the unit of shard partitioning and the sort key
// that makes merged shard output byte-identical to a single-process
// run (internal/dist).
type Job struct {
	Index    int
	Scenario scenario.Scenario
}

// Jobs expands the spec into indexed jobs, the input of Stream.
func (s *Spec) Jobs() ([]Job, error) {
	scens, err := s.Expand()
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(scens))
	for i, sc := range scens {
		jobs[i] = Job{Index: i, Scenario: sc}
	}
	return jobs, nil
}

// Outcome pairs a scenario with its result or error.
type Outcome struct {
	Scenario scenario.Scenario `json:"-"`
	Result   *scenario.Result  `json:"result,omitempty"`
	Err      string            `json:"error,omitempty"`
}

// Report is a completed campaign: outcomes in expansion order.
type Report struct {
	Name     string    `json:"name,omitempty"`
	Outcomes []Outcome `json:"scenarios"`
}

// Failed counts scenarios that returned an error.
func (r *Report) Failed() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Err != "" {
			n++
		}
	}
	return n
}

// Options tunes a campaign run.
type Options struct {
	// Workers bounds the goroutine pool; <= 0 means 1.
	Workers int

	// Progress, when set, fires after each scenario completes (from
	// the completing worker's goroutine).
	Progress func(done, total int, o *Outcome)

	// Started, when set, fires when a worker picks a job up, before
	// its scenario runs. Calls are serialized with Progress and emit
	// under the same lock, so a sink tracking in-flight cells (the
	// progress Meter) needs no locking of its own.
	Started func(j *Job)

	// CellTimeout bounds one scenario's wall-clock execution; <= 0
	// means no bound. A cell that exceeds it is emitted as a failed
	// outcome (ErrCellTimeout-prefixed error) instead of hanging its
	// worker, so one pathological cell degrades the campaign to a
	// partial result rather than wedging it.
	CellTimeout time.Duration
}

// ErrCellTimeout prefixes the Outcome.Err of a cell that exceeded
// Options.CellTimeout, so reports and CSV rows can be filtered on it.
const ErrCellTimeout = "cell timeout"

// runCell executes one scenario, bounding its wall-clock time when
// timeout > 0. On timeout the scenario's goroutine is abandoned, not
// cancelled — the simulator has no preemption points — so the worker
// slot frees immediately while the stray run finishes (or spins) in
// the background and its result is discarded. That trade buys a
// guaranteed-progress campaign at the cost of transient CPU from
// abandoned cells.
func runCell(sc scenario.Scenario, timeout time.Duration) (*scenario.Result, error) {
	if timeout <= 0 {
		return scenario.Run(sc)
	}
	type outcome struct {
		res *scenario.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := scenario.Run(sc)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		return nil, fmt.Errorf("%s: exceeded the %s wall-clock budget", ErrCellTimeout, timeout)
	}
}

// Stream is the campaign execution core: it fans jobs out across a
// bounded pool of worker goroutines and hands each completed Outcome
// to emit as it finishes, retaining nothing itself. Emit calls are
// serialized (one at a time, from the completing worker's goroutine)
// so sinks need no locking of their own; outcomes arrive in completion
// order, not expansion order — consumers that need determinism sort on
// Job.Index, as the in-memory Report and the shard merger do.
//
// Scenario failures do not abort the stream — they are emitted as
// outcomes with Err set — but an emit error does: no new jobs are
// dispatched, in-flight scenarios drain, and Stream returns the error.
// That is the hook crash-interruption tests use to kill a campaign
// mid-run.
func Stream(jobs []Job, opts Options, emit func(*Job, *Outcome) error) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobc := make(chan *Job)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes emit, Progress, and the done counter
	var emitErr error
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobc {
				if opts.Started != nil {
					mu.Lock()
					opts.Started(j)
					mu.Unlock()
				}
				o := Outcome{Scenario: j.Scenario}
				res, err := runCell(j.Scenario, opts.CellTimeout)
				if err != nil {
					o.Err = err.Error()
				} else {
					o.Result = res
				}
				mu.Lock()
				done++
				if emitErr == nil {
					if err := emit(j, &o); err != nil {
						emitErr = err
						stopOnce.Do(func() { close(stop) })
					} else if opts.Progress != nil {
						opts.Progress(done, len(jobs), &o)
					}
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case jobc <- &jobs[i]:
		case <-stop:
			break dispatch
		}
	}
	close(jobc)
	wg.Wait()
	return emitErr
}

// Run expands and executes a campaign, collecting every outcome in
// expansion order — a thin in-memory sink over Stream. Scenario
// failures do not abort the campaign — they are recorded in the report
// — but an invalid spec fails before anything runs.
func Run(spec *Spec, opts Options) (*Report, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	report := &Report{Name: spec.Name, Outcomes: make([]Outcome, len(jobs))}
	if err := Stream(jobs, opts, func(j *Job, o *Outcome) error {
		report.Outcomes[j.Index] = *o
		return nil
	}); err != nil {
		return nil, err
	}
	return report, nil
}

// WriteJSON encodes the report deterministically (results only carry
// fields that are pure functions of their scenarios).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// csvHeader lists the per-scenario CSV columns.
var csvHeader = []string{
	"name", "topo", "scheme", "script", "dist", "load", "seed",
	"flows", "completed", "mean_fct_ms", "p50_fct_ms", "p95_fct_ms", "p99_fct_ms",
	"probe_frac", "queue_drops", "linkdown_drops", "looped_frac",
	"baseline_gbps", "min_gbps", "recovery_ms",
	"nodedown_drops", "probe_loss_frac", "swap_conv_ms",
	"probe_tx_saved", "probe_suppressed", "metrics_samples",
	"mice_p99_ms", "eleph_p99_ms", "jain", "error",
}

// classCells renders the per-class attribution columns (mice p99,
// elephant p99, Jain fairness): blank when class_stats was off, so
// existing campaigns keep their exact cell values and a true zero
// stays distinguishable from "not measured". A class with no
// completed flows is blank too.
func classCells(res *scenario.Result) (mice, eleph, jain string) {
	c := res.Classes
	if c == nil {
		return "", "", ""
	}
	if c.Mice.Flows > 0 {
		mice = fmt.Sprintf("%.3f", c.Mice.P99Ms)
	}
	if c.Elephants.Flows > 0 {
		eleph = fmt.Sprintf("%.3f", c.Elephants.P99Ms)
	}
	jain = fmt.Sprintf("%.4f", c.Jain)
	return mice, eleph, jain
}

// swapConvCell renders the policy-swap convergence column: blank when
// the scenario swapped nothing, -1 when a swap never converged before
// the run ended, otherwise the widest window in milliseconds.
func swapConvCell(res *scenario.Result) string {
	ns, ok := res.SwapConvergenceNs()
	switch {
	case !ok:
		return ""
	case ns < 0:
		return "-1"
	default:
		return msec(float64(ns))
	}
}

// probeAggCells renders the probe-aggregation savings columns: blank
// when neither packing nor suppression was configured, so a cell that
// genuinely saved zero probes stays distinguishable from one where the
// feature was off — the same blank-not-zero convention as classCells.
func probeAggCells(res *scenario.Result) (saved, suppressed string) {
	if !res.ProbeAggOn {
		return "", ""
	}
	return trimFloat(res.ProbeTxSaved), trimFloat(res.ProbeSuppressed)
}

// metricsCell renders the telemetry sample-count column: blank when
// metrics sampling was off.
func metricsCell(res *scenario.Result) string {
	if !res.MetricsOn {
		return ""
	}
	return strconv.Itoa(res.MetricsSamples)
}

// probeLossCell renders the realized probe-loss column: blank when no
// probe ever crossed a loss-injected channel (the metric was never
// armed), so a true zero loss rate stays distinguishable from "no
// loss configured" — mirroring how agg excludes those rows.
func probeLossCell(res *scenario.Result) string {
	if res.ProbeLossSeen == 0 {
		return ""
	}
	return fmt.Sprintf("%.5f", res.ProbeLossFrac)
}

// WriteCSV renders one row per scenario.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, o := range r.Outcomes {
		res := o.Result
		if res == nil {
			res = &scenario.Result{
				Name:   o.Scenario.Name,
				Topo:   o.Scenario.TopoSpec,
				Scheme: o.Scenario.Scheme,
				Script: o.Scenario.Script,
				Seed:   o.Scenario.Seed,
			}
		}
		row := []string{
			res.Name, res.Topo, string(res.Scheme), res.Script, res.Dist,
			trimFloat(res.Load), strconv.FormatInt(res.Seed, 10),
			strconv.Itoa(res.Flows), strconv.FormatInt(res.Completed, 10),
			msec(res.MeanFCT * 1e9), msec(res.P50FCT * 1e9), msec(res.P95FCT * 1e9), msec(res.P99FCT * 1e9),
			fmt.Sprintf("%.5f", res.ProbeFrac()),
			trimFloat(res.QueueDrops), trimFloat(res.LinkDownDrops),
			fmt.Sprintf("%.5f", res.LoopedFrac),
			fmt.Sprintf("%.3f", res.BaselineBps/1e9), fmt.Sprintf("%.3f", res.MinBps/1e9),
			msec(float64(res.RecoveryNs)),
			trimFloat(res.NodeDownDrops),
			probeLossCell(res),
			swapConvCell(res),
		}
		saved, suppressed := probeAggCells(res)
		row = append(row, saved, suppressed, metricsCell(res))
		mice, eleph, jain := classCells(res)
		row = append(row, mice, eleph, jain, o.Err)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func msec(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }

// ComparisonTable groups outcomes by (topo, load, script, seed) and
// lays the schemes side by side on tail FCT (p95 and p99) — the
// summary the paper's figures compare schemes on. Rows are sorted by
// group key; scheme columns follow the spec's scheme order.
func (r *Report) ComparisonTable(schemes []scenario.Scheme) (header []string, rows [][]string) {
	header = []string{"topo", "load", "script", "seed"}
	for _, s := range schemes {
		header = append(header, string(s)+" p95ms", string(s)+" p99ms", string(s)+" drops", string(s)+" jain")
	}
	type key struct {
		topo, script string
		load         float64
		seed         int64
	}
	groups := map[key]map[scenario.Scheme]*scenario.Result{}
	var keys []key
	for _, o := range r.Outcomes {
		if o.Result == nil {
			continue
		}
		k := key{topo: o.Scenario.TopoSpec, script: o.Result.Script, load: o.Result.Load, seed: o.Result.Seed}
		if groups[k] == nil {
			groups[k] = map[scenario.Scheme]*scenario.Result{}
			keys = append(keys, k)
		}
		groups[k][o.Result.Scheme] = o.Result
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.topo != b.topo {
			return a.topo < b.topo
		}
		if a.load != b.load {
			return a.load < b.load
		}
		if a.script != b.script {
			return a.script < b.script
		}
		return a.seed < b.seed
	})
	for _, k := range keys {
		row := []string{k.topo, trimFloat(k.load), k.script, strconv.FormatInt(k.seed, 10)}
		for _, s := range schemes {
			if res, ok := groups[k][s]; ok {
				jain := "" // blank: ran without class_stats
				if res.Classes != nil {
					jain = fmt.Sprintf("%.4f", res.Classes.Jain)
				}
				row = append(row,
					fmt.Sprintf("%.3f", res.P95FCT*1e3),
					fmt.Sprintf("%.3f", res.P99FCT*1e3),
					trimFloat(res.QueueDrops+res.LinkDownDrops),
					jain)
			} else {
				row = append(row, "-", "-", "-", "-")
			}
		}
		rows = append(rows, row)
	}
	return header, rows
}
