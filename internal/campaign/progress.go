package campaign

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Meter renders a live campaign progress line: cells completed/total,
// elapsed wall time, an ETA from a moving average of per-cell wall
// times, and the names of the longest-running in-flight cells (the
// stragglers that decide when the campaign actually finishes).
//
// Wire Started and Completed into Options.Started and Options.Progress;
// Stream serializes both under one lock, so the Meter piggybacks on
// completion events instead of running a ticker goroutine of its own.
// Lines are rate-limited to one per Every except the final cell, which
// always prints. Output goes to stderr in the CLIs, so it never touches
// the deterministic result streams.
type Meter struct {
	// Every is the minimum interval between printed lines (default 2s).
	Every time.Duration

	mu       sync.Mutex
	w        io.Writer
	total    int
	done     int
	failed   int
	start    time.Time
	last     time.Time
	inflight map[string]time.Time
	avgNs    float64 // exponential moving average of per-cell wall time
	cells    int     // completions folded into avgNs
	now      func() time.Time
}

// NewMeter returns a Meter writing progress lines to w for a campaign
// of total cells.
func NewMeter(w io.Writer, total int) *Meter {
	return &Meter{
		Every:    2 * time.Second,
		w:        w,
		total:    total,
		inflight: make(map[string]time.Time),
		now:      time.Now,
	}
}

// Started records a cell entering a worker (Options.Started).
func (m *Meter) Started(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	if m.start.IsZero() {
		m.start = t
	}
	m.inflight[j.Scenario.Name] = t
}

// Completed records a finished cell and prints a progress line if one
// is due (Options.Progress).
func (m *Meter) Completed(done, total int, o *Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	if begun, ok := m.inflight[o.Scenario.Name]; ok {
		delete(m.inflight, o.Scenario.Name)
		// EMA with alpha 0.25: recent cells dominate, so the ETA adapts
		// when a sweep crosses from cheap cells into expensive ones.
		d := float64(t.Sub(begun))
		if m.cells == 0 {
			m.avgNs = d
		} else {
			m.avgNs += 0.25 * (d - m.avgNs)
		}
		m.cells++
	}
	m.done = done
	m.total = total
	if o.Err != "" {
		m.failed++
	}
	if done == total || m.last.IsZero() || t.Sub(m.last) >= m.every() {
		m.last = t
		fmt.Fprintln(m.w, m.line(t))
	}
}

// Tick prints a rate-limited progress line without recording any
// event. It is the seam for callers with a heartbeat-like pulse (the
// fabric coordinator fires it on every worker heartbeat), so the live
// line keeps updating between possibly minutes-apart completions.
// Before the first Started or after the final cell it does nothing.
func (m *Meter) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.start.IsZero() || (m.total > 0 && m.done >= m.total) {
		return
	}
	t := m.now()
	if !m.last.IsZero() && t.Sub(m.last) < m.every() {
		return
	}
	m.last = t
	fmt.Fprintln(m.w, m.line(t))
}

func (m *Meter) every() time.Duration {
	if m.Every > 0 {
		return m.Every
	}
	return 2 * time.Second
}

// line renders one progress line at time t. Callers hold mu.
func (m *Meter) line(t time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "progress: %d/%d cells", m.done, m.total)
	if m.failed > 0 {
		fmt.Fprintf(&b, " (%d failed)", m.failed)
	}
	fmt.Fprintf(&b, ", elapsed %s", fmtDur(t.Sub(m.start)))
	if remaining := m.total - m.done; remaining > 0 && m.cells > 0 {
		// The pool keeps len(inflight) cells moving at once, so the
		// serial moving-average estimate divides by that parallelism.
		par := len(m.inflight)
		if par < 1 {
			par = 1
		}
		eta := time.Duration(m.avgNs * float64(remaining) / float64(par))
		fmt.Fprintf(&b, ", eta ~%s", fmtDur(eta))
	}
	if s := m.stragglers(t); s != "" {
		fmt.Fprintf(&b, ", running: %s", s)
	}
	return b.String()
}

// stragglers names the longest-running in-flight cells, oldest first,
// capped at three.
func (m *Meter) stragglers(t time.Time) string {
	if len(m.inflight) == 0 {
		return ""
	}
	type cell struct {
		name  string
		begun time.Time
	}
	cells := make([]cell, 0, len(m.inflight))
	for name, begun := range m.inflight {
		cells = append(cells, cell{name, begun})
	}
	sort.Slice(cells, func(i, j int) bool {
		if !cells[i].begun.Equal(cells[j].begun) {
			return cells[i].begun.Before(cells[j].begun)
		}
		return cells[i].name < cells[j].name
	})
	shown := cells
	if len(shown) > 3 {
		shown = shown[:3]
	}
	parts := make([]string, len(shown))
	for i, c := range shown {
		parts[i] = fmt.Sprintf("%s (%s)", c.name, fmtDur(t.Sub(c.begun)))
	}
	if extra := len(cells) - len(shown); extra > 0 {
		parts = append(parts, fmt.Sprintf("+%d more", extra))
	}
	return strings.Join(parts, ", ")
}

// fmtDur renders a duration at progress-line precision: tenths of a
// second under a minute, whole seconds beyond.
func fmtDur(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	if d < time.Minute {
		return d.Round(100 * time.Millisecond).String()
	}
	return d.Round(time.Second).String()
}
