package campaign

import (
	"strings"
	"testing"
	"time"

	"contra/internal/scenario"
)

// slowSpec is a single cell expensive enough (tens of milliseconds of
// wall clock) that a 1ms budget reliably expires mid-run.
func slowSpec() *Spec {
	return &Spec{
		Name:    "slow",
		Topos:   []string{"fattree:4:2"},
		Schemes: []scenario.Scheme{scenario.SchemeContra},
		Loads:   []float64{0.5},
		Workload: scenario.Workload{
			Dist: "websearch", DurationNs: 20_000_000, MaxFlows: 4000,
		},
		Policy: "minimize(path.util)",
	}
}

func TestCellTimeoutRecordsFailureInsteadOfHanging(t *testing.T) {
	report, err := Run(slowSpec(), Options{Workers: 1, CellTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != 1 {
		t.Fatalf("%d outcomes, want 1", len(report.Outcomes))
	}
	o := report.Outcomes[0]
	if o.Err == "" || !strings.HasPrefix(o.Err, ErrCellTimeout) {
		t.Fatalf("outcome error %q, want %q prefix", o.Err, ErrCellTimeout)
	}
	if o.Result != nil {
		t.Fatal("timed-out cell carries a result")
	}
	if report.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1", report.Failed())
	}
	// The failed cell still renders as a partial CSV row whose error
	// column names the timeout — graceful degradation, not a lost row.
	var csv strings.Builder
	if err := report.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	if !strings.Contains(lines[1], ErrCellTimeout) {
		t.Fatalf("CSV row %q lacks the timeout reason", lines[1])
	}
}

func TestCellTimeoutGenerousBudgetIsInvisible(t *testing.T) {
	spec := &Spec{
		Name:    "quick",
		Topos:   []string{"dc"},
		Schemes: []scenario.Scheme{scenario.SchemeECMP},
		Loads:   []float64{0.2},
		Workload: scenario.Workload{
			Dist: "cache", DurationNs: 1_000_000, MaxFlows: 50,
		},
	}
	ref, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	timed, err := Run(spec, Options{Workers: 1, CellTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := ref.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := timed.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("a generous cell timeout perturbed campaign output")
	}
}

func TestSpecCellTimeoutValidation(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","topos":["dc"],"schemes":["ecmp"],"loads":[0.2],"cell_timeout_ns":-5}`)); err == nil {
		t.Fatal("negative cell_timeout_ns accepted")
	}
	spec, err := Parse([]byte(`{"name":"x","topos":["dc"],"schemes":["ecmp"],"loads":[0.2],"cell_timeout_ns":2000000000}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.CellTimeout() != 2*time.Second {
		t.Fatalf("CellTimeout() = %v, want 2s", spec.CellTimeout())
	}
	// The knob is an execution knob: it must not shift scenario keys
	// (checkpoints and golden digests key on them).
	withTO, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	spec.CellTimeoutNs = 0
	without, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if withTO[0].Key() != without[0].Key() {
		t.Fatal("cell_timeout_ns leaked into scenario keys")
	}
}
