package campaign

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"contra/internal/scenario"
)

// TestCSVBlankOptionalColumns pins the blank-not-zero convention for
// every feature-gated column: when a feature was off for a cell, its
// columns are empty strings — not zeros — so a true measured zero stays
// distinguishable from "not measured".
func TestCSVBlankOptionalColumns(t *testing.T) {
	off := &scenario.Result{Name: "off-cell", Topo: "dc", Scheme: scenario.SchemeContra}
	on := &scenario.Result{
		Name: "on-cell", Topo: "dc", Scheme: scenario.SchemeContra,
		ProbeAggOn: true, ProbeTxSaved: 0, ProbeSuppressed: 12,
		MetricsOn: true, MetricsSamples: 7,
	}
	r := &Report{Outcomes: []Outcome{{Result: off}, {Result: on}}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d CSV rows, want header + 2", len(rows))
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	gated := []string{
		"probe_tx_saved", "probe_suppressed", "metrics_samples",
		"mice_p99_ms", "eleph_p99_ms", "jain",
	}
	for _, name := range gated {
		idx, ok := col[name]
		if !ok {
			t.Fatalf("header missing column %q", name)
		}
		if got := rows[1][idx]; got != "" {
			t.Errorf("feature-off row %s = %q, want blank", name, got)
		}
	}
	if got := rows[2][col["probe_tx_saved"]]; got != "0" {
		t.Errorf("feature-on probe_tx_saved = %q, want explicit 0", got)
	}
	if got := rows[2][col["probe_suppressed"]]; got != "12" {
		t.Errorf("feature-on probe_suppressed = %q, want 12", got)
	}
	if got := rows[2][col["metrics_samples"]]; got != "7" {
		t.Errorf("feature-on metrics_samples = %q, want 7", got)
	}
}

// TestStreamStartedHook verifies Started fires once per job before its
// outcome completes, and that the Meter's in-flight accounting drains.
func TestStreamStartedHook(t *testing.T) {
	spec := &Spec{
		Topos:   []string{"no-such-topo"}, // fails fast in scenario.Run
		Schemes: []scenario.Scheme{scenario.SchemeECMP},
		Loads:   []float64{0.1, 0.2, 0.3},
		Workload: scenario.Workload{
			Dist: "cache", DurationNs: 1_000_000, MaxFlows: 5,
		},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	started := 0
	err = Stream(jobs, Options{
		Workers: 2,
		Started: func(j *Job) { started++ },
	}, func(j *Job, o *Outcome) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if started != len(jobs) {
		t.Fatalf("Started fired %d times, want %d", started, len(jobs))
	}
}

// TestMeterLine drives the Meter with a fake clock and checks the
// rendered line: counts, elapsed, moving-average ETA, stragglers.
func TestMeterLine(t *testing.T) {
	var out bytes.Buffer
	m := NewMeter(&out, 4)
	cur := time.Unix(1000, 0)
	m.now = func() time.Time { return cur }

	job := func(name string) *Job {
		return &Job{Scenario: scenario.Scenario{Name: name}}
	}
	m.Started(job("cell-a"))
	m.Started(job("cell-b"))
	cur = cur.Add(2 * time.Second)
	m.Completed(1, 4, &Outcome{Scenario: scenario.Scenario{Name: "cell-a"}})
	m.Started(job("cell-c"))
	cur = cur.Add(4 * time.Second)
	m.Completed(2, 4, &Outcome{Scenario: scenario.Scenario{Name: "cell-b"}, Err: "boom"})

	line := m.line(cur)
	for _, want := range []string{
		"2/4 cells", "(1 failed)", "elapsed 6s", "eta ~", "running: cell-c (4s)",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// cell-a took 2s, cell-b 6s: EMA = 2 + 0.25*(6-2) = 3s; 2 cells
	// remain over 1 in-flight worker -> eta ~6s.
	if !strings.Contains(line, "eta ~6s") {
		t.Errorf("line %q: want eta ~6s from the moving average", line)
	}
	if out.Len() == 0 {
		t.Error("Completed never printed a progress line")
	}
}

// TestMeterStragglerCap pins the oldest-first ordering and the +N more
// overflow suffix.
func TestMeterStragglerCap(t *testing.T) {
	var out bytes.Buffer
	m := NewMeter(&out, 10)
	cur := time.Unix(2000, 0)
	m.now = func() time.Time { return cur }
	for _, name := range []string{"w", "x", "y", "z", "q"} {
		m.Started(&Job{Scenario: scenario.Scenario{Name: name}})
		cur = cur.Add(time.Second)
	}
	s := m.stragglers(cur)
	if !strings.HasPrefix(s, "w (5s), x (4s), y (3s)") {
		t.Errorf("stragglers = %q, want oldest-first w, x, y", s)
	}
	if !strings.Contains(s, "+2 more") {
		t.Errorf("stragglers = %q, want +2 more suffix", s)
	}
}
