package campaign

import (
	"bytes"
	"strings"
	"testing"

	"contra/internal/scenario"
)

// matrixSpec is the acceptance-criteria matrix: 2 topologies × 3
// schemes × 2 loads × 2 event scripts × 1 seed = 24 scenarios, kept
// small enough to run in test time.
func matrixSpec() *Spec {
	return &Spec{
		Name:    "matrix",
		Topos:   []string{"dc", "fattree:4:1"},
		Schemes: []scenario.Scheme{scenario.SchemeECMP, scenario.SchemeContra, scenario.SchemeHula},
		Loads:   []float64{0.2, 0.4},
		Scripts: []Script{
			{Name: "steady"},
			{Name: "linkfail", Events: []scenario.Event{
				{Kind: scenario.LinkDown, AtNs: 5_000_000, Link: "auto"},
				{Kind: scenario.LinkUp, AtNs: 9_000_000, Link: "auto"},
			}},
		},
		Workload: scenario.Workload{
			Dist: "cache", DurationNs: 3_000_000, MaxFlows: 150,
		},
	}
}

func TestExpandMatrixCount(t *testing.T) {
	spec := matrixSpec()
	scens, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 24 || spec.Size() != 24 {
		t.Fatalf("expanded %d scenarios, Size()=%d, want 24", len(scens), spec.Size())
	}
	seen := map[string]bool{}
	for _, s := range scens {
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Workload.Load == 0 || s.TopoSpec == "" || s.Scheme == "" {
			t.Fatalf("incomplete scenario %+v", s)
		}
	}
	// Defaults: no scripts -> steady; no seeds -> seed 1.
	minimal := &Spec{Topos: []string{"dc"}, Schemes: []scenario.Scheme{scenario.SchemeECMP}, Loads: []float64{0.1}}
	scens, err = minimal.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 1 || scens[0].Seed != 1 || scens[0].Script != "steady" {
		t.Fatalf("minimal expansion = %+v", scens)
	}
}

func TestExpandRejectsDuplicateAxisValues(t *testing.T) {
	// Duplicate axis values expand to identical canonical scenario
	// keys, which the sharded merge path can only detect after the
	// sweep has run — so expansion must fail upfront.
	dups := map[string]func(*Spec){
		"seed":   func(s *Spec) { s.Seeds = []int64{1, 1} },
		"load":   func(s *Spec) { s.Loads = []float64{0.2, 0.2} },
		"topo":   func(s *Spec) { s.Topos = []string{"dc", "dc"} },
		"scheme": func(s *Spec) { s.Schemes = append(s.Schemes, s.Schemes[0]) },
	}
	for axis, mut := range dups {
		spec := matrixSpec()
		mut(spec)
		if _, err := spec.Expand(); err == nil {
			t.Errorf("Expand accepted a duplicate %s", axis)
		}
	}
}

func TestExpandRejectsBadCell(t *testing.T) {
	spec := matrixSpec()
	spec.Schemes = append(spec.Schemes, "ospf")
	if _, err := spec.Expand(); err == nil {
		t.Fatal("Expand accepted an unknown scheme")
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	if _, err := Parse([]byte(`{"topos":["dc"],"schemes":["ecmp"],"loads":[0.1],"workloads":{}}`)); err == nil {
		t.Fatal("Parse accepted a misspelled field")
	}
	if _, err := Parse([]byte(`{"topos":["dc"],"schemes":["ecmp"]}`)); err == nil {
		t.Fatal("Parse accepted an fct campaign without loads")
	}
}

func TestSerialAndParallelCampaignsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := matrixSpec()
	var dumps []string
	for _, workers := range []int{1, 8} {
		report, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if report.Failed() > 0 {
			for _, o := range report.Outcomes {
				if o.Err != "" {
					t.Errorf("%s: %s", o.Scenario.Name, o.Err)
				}
			}
			t.Fatalf("%d scenarios failed with %d workers", report.Failed(), workers)
		}
		var j, c bytes.Buffer
		if err := report.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := report.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, j.String()+"\n===\n"+c.String())
	}
	if dumps[0] != dumps[1] {
		t.Fatalf("worker count changed campaign output:\n--- workers=1\n%.2000s\n--- workers=8\n%.2000s", dumps[0], dumps[1])
	}
}

func TestScenarioFailureIsRecordedNotFatal(t *testing.T) {
	spec := &Spec{
		Topos:   []string{"dc"},
		Schemes: []scenario.Scheme{scenario.SchemeECMP},
		Loads:   []float64{0.2},
		Scripts: []Script{{Name: "bad", Events: []scenario.Event{
			{Kind: scenario.LinkDown, AtNs: 1_000_000, Link: "no-such"},
		}}},
		Workload: scenario.Workload{Dist: "cache", DurationNs: 2_000_000, MaxFlows: 50},
	}
	report, err := Run(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1", report.Failed())
	}
	if !strings.Contains(report.Outcomes[0].Err, "no-such") {
		t.Fatalf("error %q does not name the bad link", report.Outcomes[0].Err)
	}
}

func TestComparisonTableGroupsSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := matrixSpec()
	spec.Topos = spec.Topos[:1]
	spec.Schemes = spec.Schemes[:2]
	spec.Scripts = spec.Scripts[:1]
	report, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	header, rows := report.ComparisonTable(spec.Schemes)
	// 4 key columns + 4 per scheme (p95, p99, drops, jain).
	if len(header) != 4+4*len(spec.Schemes) {
		t.Fatalf("header = %v", header)
	}
	// One row per (topo, load, script, seed) group: 1*2*1*1.
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(rows), rows)
	}
	for _, r := range rows {
		for i, cell := range r {
			if cell == "-" {
				t.Fatalf("missing scheme cell %d in row %v", i, r)
			}
		}
	}
}
