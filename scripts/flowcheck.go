//go:build ignore

// Command flowcheck validates v1 flow-trace files (the format
// internal/flowtrace emits and docs/trace-format.md specifies): the
// first line must be a version-1 meta record with a known workload
// kind and the horizon field that kind requires, every following line
// a flow with endpoints, a size or rate, and a unique nonzero id, and
// the flow count must match the meta's declaration. CI's
// workload-smoke job runs it over every trace a recorded campaign
// produced, so a format drift in the recorder fails the build before
// it breaks replay.
//
// Usage:
//
//	go run scripts/flowcheck.go run.flow.jsonl [more.flow.jsonl ...]
//
// Exits 0 and prints per-file summaries on success; prints the first
// offending line and exits 1 on any violation.
package main

import (
	"encoding/json"
	"fmt"

	"contra/scripts/internal/jsonl"
)

type metaLine struct {
	Type       string  `json:"type"`
	V          int     `json:"v"`
	Kind       string  `json:"kind"`
	Topo       string  `json:"topo"`
	Load       float64 `json:"load"`
	RateBps    float64 `json:"rate_bps"`
	DeadlineNs int64   `json:"deadline_ns"`
	EndNs      int64   `json:"end_ns"`
	Flows      *int    `json:"flows"`
}

type flowLine struct {
	Type    string  `json:"type"`
	ID      uint64  `json:"id"`
	Src     string  `json:"src"`
	Dst     string  `json:"dst"`
	Bytes   int64   `json:"bytes"`
	RateBps float64 `json:"rate_bps"`
	StartNs *int64  `json:"start_ns"`
}

func checkMeta(m *metaLine) error {
	switch {
	case m.V != 1:
		return fmt.Errorf("unsupported trace version %d (this checker reads v1)", m.V)
	case m.Kind != "fct" && m.Kind != "cbr" && m.Kind != "cohorts":
		return fmt.Errorf("unknown workload kind %q", m.Kind)
	case m.Topo == "":
		return fmt.Errorf("meta needs topo")
	case m.Flows == nil || *m.Flows < 0:
		return fmt.Errorf("meta needs flows >= 0")
	case m.Load < 0 || m.RateBps < 0:
		return fmt.Errorf("meta rate knobs negative")
	}
	if m.Kind == "cbr" {
		if m.EndNs <= 0 || m.DeadlineNs != 0 {
			return fmt.Errorf("cbr meta needs end_ns > 0 and no deadline_ns")
		}
	} else {
		if m.DeadlineNs <= 0 || m.EndNs != 0 {
			return fmt.Errorf("%s meta needs deadline_ns > 0 and no end_ns", m.Kind)
		}
	}
	return nil
}

func checkFlow(f *flowLine, m *metaLine, seen map[uint64]bool) error {
	switch {
	case f.ID == 0:
		return fmt.Errorf("flow id 0 is reserved")
	case seen[f.ID]:
		return fmt.Errorf("duplicate flow id %d", f.ID)
	case f.Src == "" || f.Dst == "":
		return fmt.Errorf("flow needs src and dst")
	case f.StartNs == nil || *f.StartNs < 0:
		return fmt.Errorf("flow needs start_ns >= 0")
	case f.Bytes < 0 || f.RateBps < 0:
		return fmt.Errorf("flow size knobs negative")
	}
	seen[f.ID] = true
	if m.Kind == "cbr" {
		if f.RateBps <= 0 {
			return fmt.Errorf("cbr flow needs rate_bps > 0")
		}
	} else {
		if f.Bytes <= 0 {
			return fmt.Errorf("%s flow needs bytes > 0", m.Kind)
		}
	}
	return nil
}

func checkFile(path string) (string, error) {
	var meta metaLine
	flows := 0
	seen := map[uint64]bool{}
	_, err := jsonl.Walk(path, func(typ string, raw []byte) error {
		if meta.Type == "" {
			if typ != "meta" {
				return fmt.Errorf("first line has type %q, want \"meta\"", typ)
			}
			if err := json.Unmarshal(raw, &meta); err != nil {
				return err
			}
			return checkMeta(&meta)
		}
		if typ != "flow" {
			return fmt.Errorf("unknown type %q", typ)
		}
		var f flowLine
		if err := json.Unmarshal(raw, &f); err != nil {
			return err
		}
		flows++
		return checkFlow(&f, &meta, seen)
	})
	if err != nil {
		return "", err
	}
	if flows != *meta.Flows {
		return "", fmt.Errorf("trace is torn: meta declares %d flows, file carries %d", *meta.Flows, flows)
	}
	return fmt.Sprintf("v%d %s trace on %s: %d flow(s)", meta.V, meta.Kind, meta.Topo, flows), nil
}

func main() {
	jsonl.Main("flowcheck", "<trace.flow.jsonl> [...]", checkFile)
}
