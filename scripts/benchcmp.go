// Command benchcmp is the CI performance gate's comparator: it reads
// two bench JSON files (the shape scripts/bench.sh emits — benchmark
// name -> {ns_op, b_op, allocs_op}, under a "benchmarks" or "after"
// key) and fails when the current run regresses against the committed
// baseline.
//
// Three checks, in decreasing order of machine-independence:
//
//   - ratio constraints (-maxratio A/B=0.5,...): the current run's
//     ns_op ratio between two benchmarks must stay under the bound.
//     Ratios within one run cancel out machine speed, so this is the
//     strongest cross-machine signal — it is how the probe-packing
//     speedup (packed <= 0.5x unpacked) is enforced.
//   - allocs_op: allocation counts are deterministic per build, so a
//     regression beyond the tolerance (plus a slack of 2 for warm-up
//     effects in tiny counts) fails regardless of hardware.
//   - ns_op: fails when the current time exceeds baseline * (1+tol).
//     This assumes comparable hardware; refresh the baseline with
//     scripts/bench.sh on quiet hardware after intentional changes.
//   - zero-alloc constraints (-zeroalloc A,B,...): the named benchmarks
//     must report exactly 0 allocs/op in the current run. Unlike the
//     baseline-relative allocs check this also covers benchmarks the
//     baseline has never recorded, so a new-in-this-PR benchmark can be
//     held to the invariant from its first run.
//
// Usage:
//
//	go run scripts/benchcmp.go -base BENCH_PR5.json -cur bench-out/BENCH_PR5.json \
//	    -tol 0.20 -maxratio 'BenchmarkProbeFanoutFattree8Packed/BenchmarkProbeFanoutFattree8=0.5'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type bench struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// load reads a bench JSON file, looking for the benchmark map under
// "benchmarks", then "after" (the before/after shape), then the top
// level itself.
func load(path string) (map[string]bench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	for _, key := range []string{"benchmarks", "after"} {
		if msg, ok := top[key]; ok {
			var m map[string]bench
			if err := json.Unmarshal(msg, &m); err != nil {
				return nil, fmt.Errorf("%s: %q: %v", path, key, err)
			}
			return m, nil
		}
	}
	var m map[string]bench
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%s: no benchmarks/after key and not a flat map: %v", path, err)
	}
	return m, nil
}

func main() {
	base := flag.String("base", "BENCH_PR5.json", "committed baseline bench JSON")
	cur := flag.String("cur", "", "freshly measured bench JSON")
	tol := flag.Float64("tol", 0.20, "allowed fractional regression (0.20 = 20%)")
	ratios := flag.String("maxratio", "", "comma-separated A/B=r constraints on current ns_op ratios")
	zeroalloc := flag.String("zeroalloc", "", "comma-separated benchmarks that must report 0 allocs/op in the current run")
	flag.Parse()
	if *cur == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -cur is required")
		os.Exit(2)
	}
	b, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	c, err := load(*cur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	var names []string
	for name := range b {
		if _, ok := c[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmarks in common")
		os.Exit(2)
	}

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL: "+format+"\n", args...)
	}

	fmt.Printf("%-40s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "cur ns/op", "delta", "allocs")
	for _, name := range names {
		bb, cc := b[name], c[name]
		delta := 0.0
		if bb.NsOp > 0 {
			delta = (cc.NsOp - bb.NsOp) / bb.NsOp
		}
		fmt.Printf("%-40s %14.1f %14.1f %+7.1f%% %5.0f→%-4.0f\n",
			name, bb.NsOp, cc.NsOp, 100*delta, bb.AllocsOp, cc.AllocsOp)
		if delta > *tol {
			fail("%s ns/op regressed %.1f%% (limit %.0f%%)", name, 100*delta, 100**tol)
		}
		if cc.AllocsOp > bb.AllocsOp*(1+*tol)+2 {
			fail("%s allocs/op regressed: %.1f -> %.1f", name, bb.AllocsOp, cc.AllocsOp)
		}
	}

	if *ratios != "" {
		for _, spec := range strings.Split(*ratios, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			pair, bound, ok := strings.Cut(spec, "=")
			a, bn, ok2 := strings.Cut(pair, "/")
			r, err := strconv.ParseFloat(bound, 64)
			if !ok || !ok2 || err != nil {
				fmt.Fprintf(os.Stderr, "benchcmp: bad -maxratio %q (want A/B=r)\n", spec)
				os.Exit(2)
			}
			ca, okA := c[a]
			cb, okB := c[bn]
			switch {
			case !okA || !okB:
				fail("ratio %s: benchmark missing from current run", spec)
			case cb.NsOp <= 0:
				fail("ratio %s: denominator has no time", spec)
			case ca.NsOp/cb.NsOp > r:
				fail("%s/%s = %.3f exceeds %.3f", a, bn, ca.NsOp/cb.NsOp, r)
			default:
				fmt.Printf("ratio %s/%s = %.3f (limit %.3f)\n", a, bn, ca.NsOp/cb.NsOp, r)
			}
		}
	}

	if *zeroalloc != "" {
		for _, name := range strings.Split(*zeroalloc, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			cc, ok := c[name]
			switch {
			case !ok:
				fail("zeroalloc %s: benchmark missing from current run", name)
			case cc.AllocsOp != 0:
				fail("%s allocates: %.2f allocs/op (must be 0)", name, cc.AllocsOp)
			default:
				fmt.Printf("zeroalloc %s: 0 allocs/op\n", name)
			}
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcmp: all benchmarks within tolerance")
}
