#!/usr/bin/env bash
# golden.sh — check (default) or regenerate (--update) the committed
# golden digest of the fixed-seed fattree campaign. The digest pins the
# simulator's observable behavior: any hot-path change that shifts a
# single byte of campaign JSON/CSV output fails the check, which is
# what lets scheduler/data-structure rewrites land with confidence.
#
# Usage:
#   scripts/golden.sh            # run campaign, verify against digest
#   scripts/golden.sh --update   # refresh the digest after an
#                                # intentional behavior change
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=examples/campaign/golden/fattree_smoke.sha256
SPEC=examples/campaign/fattree_smoke.json
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/contracamp" ./cmd/contracamp

# Single-process reference run.
"$WORK/contracamp" -spec "$SPEC" -q -notable \
  -out "$WORK/fattree_smoke.json" -csv "$WORK/fattree_smoke.csv"

# Two shards, merged: must be byte-identical to the single run.
"$WORK/contracamp" -spec "$SPEC" -q -shard 0/2 -stream "$WORK/s0.jsonl"
"$WORK/contracamp" -spec "$SPEC" -q -shard 1/2 -stream "$WORK/s1.jsonl"
"$WORK/contracamp" -merge "$WORK/s0.jsonl,$WORK/s1.jsonl" -q -notable \
  -out "$WORK/merged.json" -csv "$WORK/merged.csv"
cmp "$WORK/fattree_smoke.json" "$WORK/merged.json"
cmp "$WORK/fattree_smoke.csv" "$WORK/merged.csv"

if [ "${1:-}" = "--update" ]; then
  mkdir -p "$(dirname "$GOLDEN")"
  (cd "$WORK" && sha256sum fattree_smoke.json fattree_smoke.csv) > "$GOLDEN"
  echo "updated $GOLDEN"
  cat "$GOLDEN"
else
  (cd "$WORK" && sha256sum -c) < "$GOLDEN"
  echo "golden digest OK: campaign output is byte-identical"
fi
