#!/usr/bin/env bash
# golden.sh — check (default) or regenerate (--update) the committed
# golden digests of the fixed-seed campaigns. The digests pin the
# simulator's observable behavior: any hot-path change that shifts a
# single byte of campaign JSON/CSV output fails the check, which is
# what lets scheduler/data-structure rewrites land with confidence.
#
# Four campaigns are pinned: the fattree FCT smoke (steady + link
# failures), the chaos smoke (whole-switch failure/reboot, seeded
# probe loss, live policy hot-swap), the packed smoke (multi-origin
# probe packing + delta suppression riding a switch failure/reboot),
# and the cohorts smoke (the generative multi-client workload engine:
# gamma/weibull arrivals, lognormal/pareto/mixture sizes, ramp/burst
# profiles, rack-local and incast placement) — so the chaos
# subsystem's, the probe-aggregation path's, and the workload engine's
# determinism contracts are all guarded byte-for-byte. Each campaign
# is also run as 2 shards and merged, which must match the
# single-process bytes exactly.
#
# Usage:
#   scripts/golden.sh            # run campaigns, verify against digests
#   scripts/golden.sh --update   # refresh the digests after an
#                                # intentional behavior change
set -euo pipefail
cd "$(dirname "$0")/.."

SPECS=(fattree_smoke chaos_smoke packed_smoke cohorts_smoke)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/contracamp" ./cmd/contracamp

for name in "${SPECS[@]}"; do
  SPEC=examples/campaign/$name.json
  GOLDEN=examples/campaign/golden/$name.sha256

  # Single-process reference run.
  "$WORK/contracamp" -spec "$SPEC" -q -notable \
    -out "$WORK/$name.json" -csv "$WORK/$name.csv"

  # Two shards, merged: must be byte-identical to the single run.
  "$WORK/contracamp" -spec "$SPEC" -q -shard 0/2 -stream "$WORK/$name.s0.jsonl"
  "$WORK/contracamp" -spec "$SPEC" -q -shard 1/2 -stream "$WORK/$name.s1.jsonl"
  "$WORK/contracamp" -merge "$WORK/$name.s0.jsonl,$WORK/$name.s1.jsonl" -q -notable \
    -out "$WORK/$name.merged.json" -csv "$WORK/$name.merged.csv"
  cmp "$WORK/$name.json" "$WORK/$name.merged.json"
  cmp "$WORK/$name.csv" "$WORK/$name.merged.csv"

  # Tracing off must be a true no-op: forcing -trace-level off on the
  # command line has to reproduce the reference bytes exactly, so the
  # trace hooks compiled into the hot path cannot perturb results when
  # disabled.
  "$WORK/contracamp" -spec "$SPEC" -q -notable -trace-level off \
    -out "$WORK/$name.off.json" -csv "$WORK/$name.off.csv"
  cmp "$WORK/$name.json" "$WORK/$name.off.json"
  cmp "$WORK/$name.csv" "$WORK/$name.off.csv"

  # Telemetry off must be a true no-op too: -metrics-interval 0 forces
  # the sampler off, so its hooks (DRE peeks, churn counters, the
  # sampling timer) cannot perturb results when disabled.
  "$WORK/contracamp" -spec "$SPEC" -q -notable -metrics-interval 0 \
    -out "$WORK/$name.moff.json" -csv "$WORK/$name.moff.csv"
  cmp "$WORK/$name.json" "$WORK/$name.moff.json"
  cmp "$WORK/$name.csv" "$WORK/$name.moff.csv"

  if [ "${1:-}" = "--update" ]; then
    mkdir -p "$(dirname "$GOLDEN")"
    (cd "$WORK" && sha256sum "$name.json" "$name.csv") > "$GOLDEN"
    echo "updated $GOLDEN"
    cat "$GOLDEN"
  else
    (cd "$WORK" && sha256sum -c) < "$GOLDEN"
    echo "golden digest OK: $name output is byte-identical"
  fi
done
