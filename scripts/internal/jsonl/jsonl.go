// Package jsonl is the shared plumbing of the repo's JSONL schema
// checkers (scripts/tracecheck.go, scripts/metricscheck.go): walking a
// file line by line, decoding the "type" discriminator every observer
// format carries, wrapping violations with the offending line number,
// and the multi-file ok/FAIL command-line loop.
package jsonl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// Walk reads path as JSONL, decodes each line's "type" discriminator,
// and hands (type, raw line) to check. Any error — unparsable line or
// a check failure — comes back wrapped with the 1-based line number.
// A file with no lines at all is an error: every recorder format
// starts with at least one line, so an empty file means a broken
// producer, not an idle one.
func Walk(path string, check func(typ string, raw []byte) error) (lines int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		raw := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return lines, fmt.Errorf("line %d: not a JSON object: %v", lines, err)
		}
		if err := check(probe.Type, raw); err != nil {
			return lines, fmt.Errorf("line %d: %v", lines, err)
		}
	}
	if err := sc.Err(); err != nil {
		return lines, err
	}
	if lines == 0 {
		return 0, fmt.Errorf("no lines")
	}
	return lines, nil
}

// Main runs the shared checker CLI: every argument file goes through
// check, which returns a one-line success summary or an error. Exits 1
// if any file failed, 2 on missing arguments.
func Main(tool, usage string, check func(path string) (string, error)) {
	if len(os.Args) < 2 {
		fmt.Fprintf(os.Stderr, "usage: %s %s\n", tool, usage)
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		summary, err := check(path)
		if err != nil {
			fmt.Printf("FAIL %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("ok   %s: %s\n", path, summary)
	}
	if bad {
		os.Exit(1)
	}
}
