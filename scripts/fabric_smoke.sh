#!/usr/bin/env bash
# fabric_smoke.sh — check (default) or regenerate (--update) the
# committed golden digest of the distributed-fabric smoke campaign.
#
# The smoke is the fabric's whole fault story on one box: a coordinator
# serving the fattree fabric-smoke campaign to a fleet of 4 worker
# processes, one of which is kill -9'd mid-run. Its leases expire, the
# survivors re-lease (or steal) the lost cells, and the coordinator's
# deduplicated stream must merge to byte-for-byte the output of a plain
# single-process run — which is also pinned against the golden digest,
# so a behavior shift and a determinism break are caught separately.
#
# Usage:
#   scripts/fabric_smoke.sh            # run the smoke, verify digests
#   scripts/fabric_smoke.sh --update   # refresh the digest after an
#                                      # intentional behavior change
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC=examples/campaign/fabric_smoke.json
GOLDEN=examples/campaign/golden/fabric_smoke.sha256
NAME=fabric_smoke

WORK=$(mktemp -d)
cleanup() {
  # The killed worker is gone already; stop anything else we spawned.
  [ -n "${WPIDS:-}" ] && kill $WPIDS 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/contracamp" ./cmd/contracamp

# Single-process reference run.
"$WORK/contracamp" -spec "$SPEC" -q -notable \
  -out "$WORK/$NAME.json" -csv "$WORK/$NAME.csv"

# Coordinator (ephemeral port, external workers only) + 4 workers.
# The short lease TTL keeps the kill -9 recovery fast; it cannot
# affect output bytes, only scheduling. The run is journaled: the
# flight recorder must be strictly additive, so the byte-compares and
# the golden digest below hold with it on.
"$WORK/contracamp" -spec "$SPEC" -serve 127.0.0.1:0 -workers 0 \
  -stream "$WORK/$NAME.jsonl" -url-file "$WORK/url" -lease-ttl 1s -q -notable \
  -journal "$WORK/$NAME.journal.jsonl" \
  -out "$WORK/$NAME.fabric.json" -csv "$WORK/$NAME.fabric.csv" &
COORD=$!
for _ in $(seq 1 100); do [ -s "$WORK/url" ] && break; sleep 0.1; done
URL=$(cat "$WORK/url")

WPIDS=
VICTIM=
for i in 0 1 2 3; do
  "$WORK/contracamp" -worker "$URL" -worker-dir "$WORK/w$i" -worker-id "w$i" -q &
  WPIDS="$WPIDS $!"
  [ -z "$VICTIM" ] && VICTIM=$!
done

# Kill one worker as soon as real work is in flight (first record
# durable in the coordinator stream), i.e. genuinely mid-run.
for _ in $(seq 1 200); do [ -s "$WORK/$NAME.jsonl" ] && break; sleep 0.05; done
kill -9 "$VICTIM"
echo "killed worker $VICTIM mid-run; survivors must finish the campaign"

wait "$COORD"

# The fabric run (crash, expiry, steal and all) must be byte-identical
# to the single-process reference.
cmp "$WORK/$NAME.json" "$WORK/$NAME.fabric.json"
cmp "$WORK/$NAME.csv" "$WORK/$NAME.fabric.csv"
echo "fabric output is byte-identical to the single-process run"

# The flight recorder: the journal must validate structurally, and the
# auto-run post-mortem artifacts must exist and be non-empty.
go run scripts/journalcheck.go "$WORK/$NAME.journal.jsonl"
for ext in pm.md pm.csv; do
  [ -s "$WORK/$NAME.journal.jsonl.$ext" ] || {
    echo "missing post-mortem artifact $NAME.journal.jsonl.$ext" >&2; exit 1; }
done
grep -q '^# Campaign post-mortem' "$WORK/$NAME.journal.jsonl.pm.md"
echo "journal validated; post-mortem artifacts present"

# CI uploads the observability artifacts when FABRIC_SMOKE_OUT is set.
if [ -n "${FABRIC_SMOKE_OUT:-}" ]; then
  mkdir -p "$FABRIC_SMOKE_OUT"
  cp "$WORK/$NAME.journal.jsonl" "$WORK/$NAME.journal.jsonl.pm.md" \
     "$WORK/$NAME.journal.jsonl.pm.csv" "$FABRIC_SMOKE_OUT/"
fi

if [ "${1:-}" = "--update" ]; then
  mkdir -p "$(dirname "$GOLDEN")"
  (cd "$WORK" && sha256sum "$NAME.json" "$NAME.csv") > "$GOLDEN"
  echo "updated $GOLDEN"
  cat "$GOLDEN"
else
  (cd "$WORK" && sha256sum -c) < "$GOLDEN"
  echo "golden digest OK: $NAME output is byte-identical"
fi
