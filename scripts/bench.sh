#!/usr/bin/env bash
# bench.sh — run the simulator hot-path benchmark suite and emit
# machine-readable results.
#
# Usage:
#   scripts/bench.sh [outdir]            # full run (count=5): record a fresh
#                                        # outdir/BENCH_PR5.json (baseline refresh)
#   scripts/bench.sh -check [outdir]     # CI gate: fixed iteration counts, then
#                                        # compare against the committed
#                                        # BENCH_PR5.json with scripts/benchcmp.go.
#                                        # Never overwrites a BENCH_*.json outside
#                                        # outdir — CI cannot silently re-record
#                                        # the baseline it is gating on.
#   BENCH_SHORT=1 scripts/bench.sh       # CI smoke (count=1, few iterations)
#   BENCH_BASELINE=old.json scripts/bench.sh   # embed before/after
#   BENCH_TOL=0.30 scripts/bench.sh -check     # override the 20% gate tolerance
#
# Outputs in outdir (default bench-out/):
#   bench.txt       raw `go test -bench` text — feed this to benchstat
#   BENCH_PR5.json  per-benchmark mean ns/op, B/op, allocs/op; when
#                   BENCH_BASELINE is set, its numbers embed under
#                   "before" and the fresh run under "after"
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [ "${1:-}" = "-check" ]; then
  CHECK=1
  shift
fi
OUT="${1:-bench-out}"
mkdir -p "$OUT"

# Three tiers: microbenchmarks (tens to hundreds of ns per op), the
# whole-period / whole-fleet benchmarks (ms per op), and the fabric
# coordinator protocol ops, so fixed iteration counts can be chosen
# per tier.
MICRO='BenchmarkEventLoop|BenchmarkPacketTransit|BenchmarkProbeProcessing|BenchmarkDataForwarding'
SLOW='BenchmarkPolicySwap|BenchmarkProbeFanoutFattree8$|BenchmarkProbeFanoutFattree8Packed'
FABRIC='BenchmarkFabricHeartbeat$|BenchmarkFabricHeartbeatJournaled|BenchmarkFabricStatus'

run_bench() { # regex, extra go-test flags...
  local regex=$1
  shift
  go test -run='^$' -bench="$regex" -benchmem "$@" \
    ./internal/sim ./internal/dataplane ./internal/fabric
}

# reps runs a tier in n SEPARATE test processes. Go seeds map hashing
# per process, and the map-heavy benchmarks (flowlet/forwarding
# tables) can swing by tens of percent between hash seeds — averaging
# across processes is what makes the recorded baseline and the gate's
# re-measurement comparable.
reps() { # n, regex, extra go-test flags...
  local n=$1 regex=$2 i
  shift 2
  for i in $(seq 1 "$n"); do
    run_bench "$regex" "$@"
  done
}

if [ "$CHECK" = 1 ]; then
  # Fixed iteration counts: every gate run does identical work, so
  # the comparator sees sampling noise rather than adaptive-benchtime
  # variance. Counts are chosen to amortize one-time costs (table
  # growth, cache warmup) the same way the baseline's runs do: the
  # micro tier needs hundreds of thousands of iterations before ns/op
  # flattens, and the slow tier uses the exact 20x the baseline is
  # recorded with.
  {
    reps 3 "$MICRO" -count=1 -benchtime=500000x
    reps 3 "$SLOW" -count=1 -benchtime=20x
    reps 3 "$FABRIC" -count=1 -benchtime=200000x
  } | tee "$OUT/bench.txt"
elif [ "${BENCH_SHORT:-}" = "1" ]; then
  {
    run_bench "$MICRO" -count=1 -benchtime=100x
    run_bench "$SLOW" -count=1 -benchtime=5x
    run_bench "$FABRIC" -count=1 -benchtime=100x
  } | tee "$OUT/bench.txt"
else
  # The record mode uses the same fixed iteration counts as -check, so
  # the committed baseline and the gate's re-measurement run the exact
  # same protocol — adaptive benchtime amortizes differently and would
  # bias the comparison.
  {
    reps 3 "$MICRO" -count=2 -benchtime=500000x
    reps 3 "$SLOW" -count=2 -benchtime=20x
    reps 3 "$FABRIC" -count=2 -benchtime=200000x
  } | tee "$OUT/bench.txt"
fi

awk -v baseline="${BENCH_BASELINE:-}" '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
  ns[name]     += $3; b[name] += $5; allocs[name] += $7; cnt[name]++
}
END {
  printf "{\n"
  printf "  \"suite\": \"internal/sim + internal/dataplane hot paths\",\n"
  key = (baseline == "") ? "benchmarks" : "after"
  if (baseline != "") {
    printf "  \"before_file\": \"%s\",\n", baseline
  }
  printf "  \"%s\": {\n", key
  n = 0
  for (k in cnt) order[++n] = k
  # deterministic key order
  for (i = 1; i <= n; i++)
    for (j = i + 1; j <= n; j++)
      if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
  for (i = 1; i <= n; i++) {
    k = order[i]
    printf "    \"%s\": {\"ns_op\": %.2f, \"b_op\": %.1f, \"allocs_op\": %.2f}%s\n",
      k, ns[k]/cnt[k], b[k]/cnt[k], allocs[k]/cnt[k], (i < n ? "," : "")
  }
  printf "  }\n}\n"
}' "$OUT/bench.txt" > "$OUT/BENCH_PR5.json"

if [ "$CHECK" = 1 ]; then
  # The zero-alloc list pins the observability-off data path:
  # DataForwarding must stay allocation-free with the trace and
  # telemetry hooks compiled in, and the traced/sampled variants must
  # stay allocation-free in steady state (ring reuse). FabricHeartbeat
  # extends the same contract to the coordinator: with no journal
  # configured, the steady-state lease-protocol op allocates nothing.
  # The maxratio bounds keep decision tracing and telemetry sampling
  # an observability tax, not a rewrite of the hot path's cost model.
  go run scripts/benchcmp.go \
    -base BENCH_PR5.json -cur "$OUT/BENCH_PR5.json" \
    -tol "${BENCH_TOL:-0.20}" \
    -maxratio 'BenchmarkProbeFanoutFattree8Packed/BenchmarkProbeFanoutFattree8=0.5,BenchmarkDataForwardingTraced/BenchmarkDataForwarding=3.0,BenchmarkDataForwardingMetrics/BenchmarkDataForwarding=3.0' \
    -zeroalloc 'BenchmarkDataForwarding,BenchmarkDataForwardingTraced,BenchmarkDataForwardingMetrics,BenchmarkFabricHeartbeat'
  echo "bench gate passed against committed BENCH_PR5.json"
  exit 0
fi

if [ -n "${BENCH_BASELINE:-}" ] && [ -f "${BENCH_BASELINE}" ]; then
  # Splice the baseline object in as "before" (python for JSON safety).
  python3 - "$OUT/BENCH_PR5.json" "$BENCH_BASELINE" <<'EOF'
import json, sys
cur = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
cur["before"] = base.get("after", base.get("benchmarks", base))
json.dump(cur, open(sys.argv[1], "w"), indent=2)
EOF
fi

echo "wrote $OUT/bench.txt and $OUT/BENCH_PR5.json"
