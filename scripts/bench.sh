#!/usr/bin/env bash
# bench.sh — run the simulator hot-path benchmark suite and emit
# machine-readable results.
#
# Usage:
#   scripts/bench.sh [outdir]            # full run (count=5)
#   BENCH_SHORT=1 scripts/bench.sh       # CI smoke (count=1, 100x)
#   BENCH_BASELINE=old.json scripts/bench.sh   # embed before/after
#
# Outputs in outdir (default bench-out/):
#   bench.txt       raw `go test -bench` text — feed this to benchstat
#   BENCH_PR3.json  per-benchmark mean ns/op, B/op, allocs/op; when
#                   BENCH_BASELINE is set, its numbers embed under
#                   "before" and the fresh run under "after"
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-bench-out}"
mkdir -p "$OUT"

COUNT=5
EXTRA=()
if [ "${BENCH_SHORT:-}" = "1" ]; then
  COUNT=1
  EXTRA+=(-benchtime=100x)
fi

BENCHES='BenchmarkEventLoop|BenchmarkPacketTransit|BenchmarkProbeProcessing|BenchmarkDataForwarding|BenchmarkPolicySwap'

go test -run='^$' -bench="$BENCHES" -benchmem -count="$COUNT" "${EXTRA[@]}" \
  ./internal/sim ./internal/dataplane | tee "$OUT/bench.txt"

awk -v baseline="${BENCH_BASELINE:-}" '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
  ns[name]     += $3; b[name] += $5; allocs[name] += $7; cnt[name]++
}
END {
  printf "{\n"
  printf "  \"suite\": \"internal/sim + internal/dataplane hot paths\",\n"
  key = (baseline == "") ? "benchmarks" : "after"
  if (baseline != "") {
    printf "  \"before_file\": \"%s\",\n", baseline
  }
  printf "  \"%s\": {\n", key
  n = 0
  for (k in cnt) order[++n] = k
  # deterministic key order
  for (i = 1; i <= n; i++)
    for (j = i + 1; j <= n; j++)
      if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
  for (i = 1; i <= n; i++) {
    k = order[i]
    printf "    \"%s\": {\"ns_op\": %.2f, \"b_op\": %.1f, \"allocs_op\": %.2f}%s\n",
      k, ns[k]/cnt[k], b[k]/cnt[k], allocs[k]/cnt[k], (i < n ? "," : "")
  }
  printf "  }\n}\n"
}' "$OUT/bench.txt" > "$OUT/BENCH_PR3.json"

if [ -n "${BENCH_BASELINE:-}" ] && [ -f "${BENCH_BASELINE}" ]; then
  # Splice the baseline object in as "before" (python for JSON safety).
  python3 - "$OUT/BENCH_PR3.json" "$BENCH_BASELINE" <<'EOF'
import json, sys
cur = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
cur["before"] = base.get("after", base.get("benchmarks", base))
json.dump(cur, open(sys.argv[1], "w"), indent=2)
EOF
fi

echo "wrote $OUT/bench.txt and $OUT/BENCH_PR3.json"
