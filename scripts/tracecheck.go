//go:build ignore

// Command tracecheck validates decision-trace JSONL files (the format
// internal/trace.Recorder.WriteJSONL emits): every line must be a JSON
// object with a known "type" discriminator and the required fields for
// that type, with values in range. CI's trace-smoke job runs it over
// the JSONL a traced campaign produced, so a schema drift in the
// recorder fails the build instead of silently breaking downstream
// consumers.
//
// Usage:
//
//	go run scripts/tracecheck.go trace1.jsonl [trace2.jsonl ...]
//
// Exits 0 and prints per-file line counts on success; prints the first
// offending line and exits 1 on any violation. A file with no decision
// lines is fine (flows-level traces); a file with no lines at all is
// an error.
package main

import (
	"encoding/json"
	"fmt"

	"contra/scripts/internal/jsonl"
)

type decisionLine struct {
	Type       string    `json:"type"`
	AtNs       *int64    `json:"at_ns"`
	Flow       *uint64   `json:"flow"`
	Switch     string    `json:"switch"`
	Kind       string    `json:"kind"`
	Port       *int      `json:"port"`
	Rank       []float64 `json:"rank"`
	RunnerPort *int      `json:"runner_port"`
	RunnerRank []float64 `json:"runner_rank"`
	Era        *int      `json:"era"`
	Pid        *int      `json:"pid"`
}

type flowLine struct {
	Type      string   `json:"type"`
	Flow      *uint64  `json:"flow"`
	Src       string   `json:"src"`
	Dst       string   `json:"dst"`
	SizeBytes int64    `json:"size_bytes"`
	StartNs   *int64   `json:"start_ns"`
	FctNs     int64    `json:"fct_ns"`
	Hops      int      `json:"hops"`
	Path      []string `json:"path"`
	QueueNs   int64    `json:"queue_ns"`
	Pkts      int64    `json:"pkts"`
	Decisions int64    `json:"decisions"`
	Divergent int64    `json:"divergent"`
}

func checkDecision(data []byte) error {
	var d decisionLine
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	switch {
	case d.AtNs == nil || *d.AtNs < 0:
		return fmt.Errorf("decision needs at_ns >= 0")
	case d.Flow == nil:
		return fmt.Errorf("decision needs flow")
	case d.Switch == "":
		return fmt.Errorf("decision needs switch")
	case d.Kind != "source" && d.Kind != "transit":
		return fmt.Errorf("decision kind %q not in {source, transit}", d.Kind)
	case d.Port == nil || *d.Port < 0:
		return fmt.Errorf("decision needs port >= 0")
	case len(d.Rank) == 0:
		return fmt.Errorf("decision needs a rank vector")
	case d.RunnerPort == nil || *d.RunnerPort < -1:
		return fmt.Errorf("decision needs runner_port >= -1")
	case *d.RunnerPort == -1 && len(d.RunnerRank) != 0:
		return fmt.Errorf("runner_rank present without a runner_port")
	case *d.RunnerPort >= 0 && len(d.RunnerRank) == 0:
		return fmt.Errorf("runner_port %d without runner_rank", *d.RunnerPort)
	case d.Era == nil || *d.Era < 0 || *d.Era > 255:
		return fmt.Errorf("decision era out of uint8 range")
	case d.Pid == nil || *d.Pid < 0 || *d.Pid > 255:
		return fmt.Errorf("decision pid out of uint8 range")
	}
	return nil
}

func checkFlow(data []byte) error {
	var f flowLine
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	switch {
	case f.Flow == nil:
		return fmt.Errorf("flow line needs flow")
	case f.StartNs == nil || *f.StartNs < 0:
		return fmt.Errorf("flow line needs start_ns >= 0")
	case f.FctNs < 0:
		return fmt.Errorf("flow fct_ns negative")
	case f.Hops < 0 || f.Pkts < 0 || f.QueueNs < 0:
		return fmt.Errorf("flow counters negative")
	case f.Divergent > f.Decisions:
		return fmt.Errorf("divergent %d exceeds decisions %d", f.Divergent, f.Decisions)
	case f.FctNs > 0 && len(f.Path) == 0:
		return fmt.Errorf("completed flow carries no path")
	case f.Hops > 0 && len(f.Path) > f.Hops+1:
		return fmt.Errorf("path longer than hop count allows")
	}
	return nil
}

func checkFile(path string) (string, error) {
	decisions, flows := 0, 0
	_, err := jsonl.Walk(path, func(typ string, raw []byte) error {
		switch typ {
		case "decision":
			decisions++
			return checkDecision(raw)
		case "flow":
			flows++
			return checkFlow(raw)
		default:
			return fmt.Errorf("unknown type %q", typ)
		}
	})
	if err != nil {
		return "", err
	}
	if decisions+flows == 0 {
		return "", fmt.Errorf("no trace lines")
	}
	return fmt.Sprintf("%d decision line(s), %d flow line(s)", decisions, flows), nil
}

func main() {
	jsonl.Main("tracecheck", "<trace.jsonl> [...]", checkFile)
}
