//go:build ignore

// Command journalcheck validates coordinator journal JSONL files (the
// format internal/fabric.Journal emits): a versioned meta line first,
// then one event line per coordinator state transition with a dense
// monotonic sequence, non-decreasing timestamps, in-range cell
// indices, 1-based attempt numbering per cell, live-lease tracking
// within the configured cap, and at most one result per cell whose
// key matches the meta table. CI's fabric-smoke job runs it over the
// journal a coordinator wrote, so schema drift fails the build
// instead of silently breaking post-mortems.
//
// Usage:
//
//	go run scripts/journalcheck.go journal.jsonl [journal2.jsonl ...]
package main

import (
	"encoding/json"
	"fmt"

	"contra/scripts/internal/jsonl"
)

type jmetaLine struct {
	V            *int     `json:"v"`
	Cells        *int     `json:"cells"`
	LeaseTTLNs   int64    `json:"lease_ttl_ns"`
	StealAfterNs int64    `json:"steal_after_ns"`
	MaxLeases    int      `json:"max_leases"`
	Names        []string `json:"names"`
	Keys         []string `json:"keys"`
	PreDone      []int    `json:"pre_done"`
}

type jeventLine struct {
	Seq      *int64 `json:"seq"`
	TNs      *int64 `json:"t_ns"`
	Cell     *int   `json:"cell"`
	Worker   string `json:"worker"`
	Lease    int64  `json:"lease"`
	Attempt  int    `json:"attempt"`
	Holder   string `json:"holder"`
	Key      string `json:"key"`
	Attempts int    `json:"attempts"`
}

// checker accumulates cross-line state: lease and attempt tables
// replayed from the event stream, checked against the meta line.
type checker struct {
	meta      *jmetaLine
	lastSeq   int64
	lastT     int64
	grants    map[int]int   // cell → grants + steals consumed
	steals    map[int]int   // cell → steal events
	results   map[int]int   // cell → result-accepted events
	live      map[int64]int // live lease id → cell
	liveCells map[int]int   // cell → live lease count
	preDone   map[int]bool
	events    int
}

func (c *checker) cellOK(cell int) bool { return cell >= 0 && cell < *c.meta.Cells }

func (c *checker) check(typ string, raw []byte) error {
	if c.meta == nil {
		if typ != "meta" {
			return fmt.Errorf("first line must be meta, got %q", typ)
		}
		var m jmetaLine
		if err := json.Unmarshal(raw, &m); err != nil {
			return err
		}
		switch {
		case m.V == nil || *m.V != 1:
			return fmt.Errorf("meta v must be 1")
		case m.Cells == nil || *m.Cells <= 0:
			return fmt.Errorf("meta needs cells > 0")
		case m.LeaseTTLNs <= 0 || m.StealAfterNs <= 0:
			return fmt.Errorf("meta needs positive lease_ttl_ns and steal_after_ns")
		case m.MaxLeases <= 0:
			return fmt.Errorf("meta needs max_leases > 0")
		case len(m.Names) != *m.Cells || len(m.Keys) != *m.Cells:
			return fmt.Errorf("meta names/keys tables must have one entry per cell")
		}
		c.meta = &m
		c.grants = map[int]int{}
		c.steals = map[int]int{}
		c.results = map[int]int{}
		c.live = map[int64]int{}
		c.liveCells = map[int]int{}
		c.preDone = map[int]bool{}
		for _, idx := range m.PreDone {
			if idx < 0 || idx >= *m.Cells {
				return fmt.Errorf("pre_done index %d outside the cell table", idx)
			}
			c.preDone[idx] = true
		}
		return nil
	}
	if typ == "meta" {
		return fmt.Errorf("second meta line")
	}
	var ev jeventLine
	if err := json.Unmarshal(raw, &ev); err != nil {
		return err
	}
	switch {
	case ev.Seq == nil || *ev.Seq != c.lastSeq+1:
		return fmt.Errorf("%s seq missing or not dense (prev %d)", typ, c.lastSeq)
	case ev.TNs == nil || *ev.TNs < c.lastT:
		return fmt.Errorf("%s t_ns missing or out of order", typ)
	case ev.Cell == nil:
		return fmt.Errorf("%s line has no cell", typ)
	}
	c.lastSeq, c.lastT = *ev.Seq, *ev.TNs
	c.events++
	cell := *ev.Cell
	switch typ {
	case "grant", "steal":
		switch {
		case !c.cellOK(cell):
			return fmt.Errorf("%s cell %d outside the cell table", typ, cell)
		case c.preDone[cell] || c.results[cell] > 0:
			return fmt.Errorf("%s of already-done cell %d", typ, cell)
		case ev.Worker == "" || ev.Lease <= 0:
			return fmt.Errorf("%s line needs a worker and a lease id", typ)
		}
		c.grants[cell]++
		c.live[ev.Lease] = cell
		c.liveCells[cell]++
		if c.liveCells[cell] > c.meta.MaxLeases {
			return fmt.Errorf("cell %d has %d concurrent leases, cap %d", cell, c.liveCells[cell], c.meta.MaxLeases)
		}
		if ev.Attempt != c.grants[cell] {
			return fmt.Errorf("%s of cell %d numbered attempt %d, want %d", typ, cell, ev.Attempt, c.grants[cell])
		}
		if typ == "steal" {
			c.steals[cell]++
			if ev.Holder == "" || ev.Holder == ev.Worker {
				return fmt.Errorf("steal of cell %d: holder %q vs thief %q", cell, ev.Holder, ev.Worker)
			}
		}
	case "heartbeat":
		// cell is -1 when the lease was already gone; a live heartbeat
		// must reference a lease the journal granted.
		if cell >= 0 {
			if got, ok := c.live[ev.Lease]; !ok || got != cell {
				return fmt.Errorf("heartbeat for cell %d rides unknown lease %d", cell, ev.Lease)
			}
		}
	case "expire":
		got, ok := c.live[ev.Lease]
		if !ok || got != cell {
			return fmt.Errorf("expire of unknown lease %d on cell %d", ev.Lease, cell)
		}
		delete(c.live, ev.Lease)
		c.liveCells[cell]--
	case "result":
		switch {
		case !c.cellOK(cell):
			return fmt.Errorf("result cell %d outside the cell table", cell)
		case c.preDone[cell]:
			return fmt.Errorf("result for pre-done cell %d (should be a duplicate)", cell)
		case ev.Key != c.meta.Keys[cell]:
			return fmt.Errorf("result for cell %d carries key %q, meta says %q", cell, ev.Key, c.meta.Keys[cell])
		case ev.Attempts != c.grants[cell]:
			return fmt.Errorf("result for cell %d reports %d attempts, journal granted %d", cell, ev.Attempts, c.grants[cell])
		}
		c.results[cell]++
		if c.results[cell] > 1 {
			return fmt.Errorf("cell %d accepted a second result", cell)
		}
		// Acceptance releases every lease on the cell.
		for id, lc := range c.live {
			if lc == cell {
				delete(c.live, id)
			}
		}
		c.liveCells[cell] = 0
	case "duplicate":
		if !c.cellOK(cell) {
			return fmt.Errorf("duplicate cell %d outside the cell table", cell)
		}
		if c.results[cell] == 0 && !c.preDone[cell] {
			return fmt.Errorf("duplicate for cell %d before any result", cell)
		}
	case "timeout":
		if !c.cellOK(cell) || c.results[cell] == 0 {
			return fmt.Errorf("timeout event for cell %d without its result", cell)
		}
	default:
		return fmt.Errorf("unknown type %q", typ)
	}
	return nil
}

func checkFile(path string) (string, error) {
	var c checker
	if _, err := jsonl.Walk(path, c.check); err != nil {
		return "", err
	}
	if c.meta == nil {
		return "", fmt.Errorf("no meta line")
	}
	done, steals := 0, 0
	for _, n := range c.results {
		done += n
	}
	for _, n := range c.steals {
		steals += n
	}
	return fmt.Sprintf("%d cell(s), %d event(s), %d result(s), %d steal(s), %d pre-done",
		*c.meta.Cells, c.events, done, steals, len(c.preDone)), nil
}

func main() {
	jsonl.Main("journalcheck", "<journal.jsonl> [...]", checkFile)
}
