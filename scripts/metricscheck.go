//go:build ignore

// Command metricscheck validates telemetry JSONL files (the format
// internal/metrics.Recorder.WriteJSONL emits): a versioned meta line
// first, then per sample tick one link line per registered link, one
// drops line, and one router line per registered router, all with
// in-range values and exactly the cardinalities the meta line
// declares. CI's metrics-smoke job runs it over the JSONL a sampled
// campaign produced, so schema drift in the recorder fails the build
// instead of silently breaking figure pipelines.
//
// Usage:
//
//	go run scripts/metricscheck.go metrics1.jsonl [metrics2.jsonl ...]
package main

import (
	"encoding/json"
	"fmt"

	"contra/scripts/internal/jsonl"
)

type metaLine struct {
	V           *int     `json:"v"`
	IntervalNs  int64    `json:"interval_ns"`
	Samples     *int     `json:"samples"`
	Dropped     int64    `json:"dropped"`
	Links       []string `json:"links"`
	DropReasons []string `json:"drop_reasons"`
	Routers     []string `json:"routers"`
}

type linkLine struct {
	T     *int64   `json:"t"`
	Link  *int     `json:"link"`
	Util  *float64 `json:"util"`
	Queue *float64 `json:"queue"`
	Drops *int64   `json:"drops"`
}

type dropsLine struct {
	T      *int64  `json:"t"`
	Counts []int64 `json:"counts"`
}

type routerLine struct {
	T        *int64 `json:"t"`
	Router   *int   `json:"router"`
	Added    *int64 `json:"added"`
	Replaced *int64 `json:"replaced"`
	Expired  *int64 `json:"expired"`
	Flaps    *int64 `json:"flaps"`
}

// checker accumulates cross-line state: the meta tables and the
// per-type line counts the trailer check compares against them.
type checker struct {
	meta    *metaLine
	links   int
	drops   int
	routers int
	lastT   int64
}

func (c *checker) check(typ string, raw []byte) error {
	if c.meta == nil {
		if typ != "meta" {
			return fmt.Errorf("first line must be meta, got %q", typ)
		}
		var m metaLine
		if err := json.Unmarshal(raw, &m); err != nil {
			return err
		}
		switch {
		case m.V == nil || *m.V != 1:
			return fmt.Errorf("meta v must be 1")
		case m.IntervalNs <= 0:
			return fmt.Errorf("meta needs interval_ns > 0")
		case m.Samples == nil || *m.Samples < 0:
			return fmt.Errorf("meta needs samples >= 0")
		case m.Dropped < 0:
			return fmt.Errorf("meta dropped negative")
		}
		c.meta = &m
		c.lastT = -1
		return nil
	}
	switch typ {
	case "meta":
		return fmt.Errorf("second meta line")
	case "link":
		var l linkLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return err
		}
		switch {
		case l.T == nil || *l.T < 0 || *l.T < c.lastT:
			return fmt.Errorf("link t missing, negative, or out of order")
		case l.Link == nil || *l.Link < 0 || *l.Link >= len(c.meta.Links):
			return fmt.Errorf("link index outside the meta link table")
		case l.Util == nil || *l.Util < 0 || *l.Util > 1:
			return fmt.Errorf("link util outside [0, 1]")
		case l.Queue == nil || *l.Queue < 0:
			return fmt.Errorf("link queue negative")
		case l.Drops == nil || *l.Drops < 0:
			return fmt.Errorf("link drops negative")
		}
		c.lastT = *l.T
		c.links++
	case "drops":
		var d dropsLine
		if err := json.Unmarshal(raw, &d); err != nil {
			return err
		}
		if d.T == nil || *d.T < 0 || *d.T < c.lastT {
			return fmt.Errorf("drops t missing, negative, or out of order")
		}
		if len(d.Counts) != len(c.meta.DropReasons) {
			return fmt.Errorf("drops counts has %d entries, meta declares %d reasons",
				len(d.Counts), len(c.meta.DropReasons))
		}
		for _, n := range d.Counts {
			if n < 0 {
				return fmt.Errorf("drops count negative")
			}
		}
		c.lastT = *d.T
		c.drops++
	case "router":
		var r routerLine
		if err := json.Unmarshal(raw, &r); err != nil {
			return err
		}
		switch {
		case r.T == nil || *r.T < 0 || *r.T < c.lastT:
			return fmt.Errorf("router t missing, negative, or out of order")
		case r.Router == nil || *r.Router < 0 || *r.Router >= len(c.meta.Routers):
			return fmt.Errorf("router index outside the meta router table")
		case r.Added == nil || r.Replaced == nil || r.Expired == nil || r.Flaps == nil:
			return fmt.Errorf("router line missing a churn counter")
		case *r.Added < 0 || *r.Replaced < 0 || *r.Expired < 0 || *r.Flaps < 0:
			return fmt.Errorf("router churn counter negative")
		}
		c.lastT = *r.T
		c.routers++
	default:
		return fmt.Errorf("unknown type %q", typ)
	}
	return nil
}

func checkFile(path string) (string, error) {
	var c checker
	if _, err := jsonl.Walk(path, c.check); err != nil {
		return "", err
	}
	if c.meta == nil {
		return "", fmt.Errorf("no meta line")
	}
	n := *c.meta.Samples
	if c.links != n*len(c.meta.Links) {
		return "", fmt.Errorf("%d link lines, meta declares %d samples x %d links",
			c.links, n, len(c.meta.Links))
	}
	if c.drops != n {
		return "", fmt.Errorf("%d drops lines for %d samples", c.drops, n)
	}
	if c.routers != n*len(c.meta.Routers) {
		return "", fmt.Errorf("%d router lines, meta declares %d samples x %d routers",
			c.routers, n, len(c.meta.Routers))
	}
	return fmt.Sprintf("%d sample(s), %d link(s), %d router(s)",
		n, len(c.meta.Links), len(c.meta.Routers)), nil
}

func main() {
	jsonl.Main("metricscheck", "<metrics.jsonl> [...]", checkFile)
}
