// Package contra is a Go implementation of Contra (Hsu et al., NSDI
// 2020): a programmable system for performance-aware routing.
//
// Operators describe their network topology and write a declarative
// policy that ranks paths — mixing regular-expression path constraints
// with dynamic metrics such as utilization and latency:
//
//	minimize(if .* W .* then path.util else inf)
//
// Compile analyzes the policy jointly with the topology and produces
// per-switch data-plane programs which collectively implement a
// specialized distance-vector protocol: switches exchange compact
// periodic probes that gather path metrics, rank policy-compliant
// paths in real time, and pin flowlets to the current best path,
// adapting at data-plane timescales.
//
// The package is organized as the paper's system is:
//
//   - the policy language (parse with ParsePolicy, or use the catalog
//     constructors such as MinUtil and Waypoint),
//   - the compiler (Compile → *Program: product graph, probe classes,
//     per-switch tables, P4 source, state accounting),
//   - a deterministic packet-level simulator standing in for the
//     paper's ns-3 testbed (NewSimulation, or the experiment runners
//     RunFCT / RunFailover / CompileSweep used by the benchmark
//     harness),
//   - the baselines the paper compares against (ECMP, HULA, SPAIN,
//     shortest-path) selectable by Scheme, and
//   - a declarative scenario engine (RunScenario) with timed event
//     scripts — failures, recoveries, capacity degradations, traffic
//     surges — plus a parallel campaign runner (RunCampaign) that
//     sweeps scenario matrices and aggregates results
//     deterministically.
package contra

import (
	"fmt"
	"io"
	"time"

	"contra/internal/campaign"
	"contra/internal/core"
	"contra/internal/exp"
	"contra/internal/policy"
	"contra/internal/scenario"
	"contra/internal/topo"
)

// Re-exported core types. Aliases keep the public API in one import
// path while the implementation stays in focused internal packages.
type (
	// Topology is a network of switches, hosts and links.
	Topology = topo.Graph
	// NodeID identifies a node within a Topology.
	NodeID = topo.NodeID
	// LinkID identifies a link within a Topology.
	LinkID = topo.LinkID
	// Policy is a parsed path-ranking policy.
	Policy = policy.Policy
	// Rank is a policy's value for one path; smaller is better.
	Rank = policy.Rank
)

// Node kinds for Topology construction.
const (
	Switch = topo.Switch
	Host   = topo.Host
)

// NewTopology returns an empty topology.
func NewTopology(name string) *Topology { return topo.New(name) }

// ParseTopology reads the line-oriented topology format:
//
//	node <name> switch|host
//	link <a> <b> [bandwidth] [delay]
func ParseTopology(r io.Reader, name string) (*Topology, error) { return topo.Parse(r, name) }

// Topology generators mirroring the paper's evaluation setups.
var (
	// Fattree builds a k-ary fat-tree (k even), optionally with hosts.
	Fattree = topo.Fattree
	// LeafSpine builds a two-tier Clos fabric.
	LeafSpine = topo.LeafSpine
	// PaperDataCenter is the §6.3 configuration: 32 hosts at 10 Gbps,
	// 4:1 oversubscription, 40 Gbps bisection.
	PaperDataCenter = topo.PaperDataCenter
	// Abilene is the 11-node Internet2 backbone (§6.4).
	Abilene = topo.Abilene
	// AbileneWithHosts attaches one host per Abilene switch.
	AbileneWithHosts = topo.AbileneWithHosts
	// RandomTopology builds a connected random graph (compiler
	// scalability sweeps).
	RandomTopology = topo.RandomConnected
)

// ParsePolicy parses policy source. Passing the topology's switch
// names as symbols enables strict name checking and the paper's
// ".*XY.*" concatenated-link notation.
func ParsePolicy(src string, symbols ...string) (*Policy, error) {
	if len(symbols) > 0 {
		return policy.Parse(src, policy.ParseOptions{Symbols: symbols})
	}
	return policy.Parse(src)
}

// Policy catalog (Figure 3 of the paper).
var (
	// ShortestPathPolicy is P1: minimize(path.len).
	ShortestPathPolicy = policy.ShortestPath
	// MinUtil is P2: minimize(path.util), the HULA policy.
	MinUtil = policy.MinUtil
	// WidestShortest is P3: minimize((path.util, path.len)).
	WidestShortest = policy.WidestShortest
	// ShortestWidest is P4: minimize((path.len, path.util)).
	ShortestWidest = policy.ShortestWidest
	// Waypoint is P5: traffic must cross one of the waypoints.
	Waypoint = policy.Waypoint
	// LinkPreference is P6: only paths over link X→Y are allowed.
	LinkPreference = policy.LinkPreference
	// WeightedLink is P7: penalize paths crossing X→Y.
	WeightedLink = policy.WeightedLink
	// SourceLocal is P8: per-source metric preferences.
	SourceLocal = policy.SourceLocal
	// CongestionAware is P9: the non-isotonic soft-threshold policy.
	CongestionAware = policy.CongestionAware
	// Failover builds Propane-style strict path preferences.
	Failover = policy.Failover
)

// Option tunes compilation.
type Option func(*core.Options)

// WithProbePeriod overrides the §5.2-derived probe period.
func WithProbePeriod(d time.Duration) Option {
	return func(o *core.Options) { o.ProbePeriodNs = int64(d) }
}

// WithFlowletTimeout sets the flowlet gap (§5.3); default 200us.
func WithFlowletTimeout(d time.Duration) Option {
	return func(o *core.Options) { o.FlowletTimeoutNs = int64(d) }
}

// WithFailureDetectPeriods sets k: a link silent for k probe periods
// is presumed failed (§5.4); default 3.
func WithFailureDetectPeriods(k int) Option {
	return func(o *core.Options) { o.FailureDetectPeriods = k }
}

// Program is a compiled policy+topology: the paper's per-switch P4
// artifacts plus everything the simulator needs to execute them.
type Program struct {
	compiled *core.Compiled
}

// Compile runs the Contra compiler.
func Compile(pol *Policy, g *Topology, opts ...Option) (*Program, error) {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	c, err := core.Compile(g, pol, o)
	if err != nil {
		return nil, err
	}
	return &Program{compiled: c}, nil
}

// CompileSource parses and compiles policy source in one step.
func CompileSource(policySrc string, g *Topology, opts ...Option) (*Program, error) {
	pol, err := ParsePolicy(policySrc, g.SortedNames()...)
	if err != nil {
		return nil, err
	}
	return Compile(pol, g, opts...)
}

// Topology returns the program's topology.
func (p *Program) Topology() *Topology { return p.compiled.Topo }

// Policy returns the compiled policy.
func (p *Program) Policy() *Policy { return p.compiled.Policy }

// Describe renders a human-readable compilation report.
func (p *Program) Describe() string { return p.compiled.Describe() }

// AnalysisReport renders the policy analysis (monotonicity,
// isotonicity, probe-class decomposition).
func (p *Program) AnalysisReport() string { return p.compiled.Analysis.Describe() }

// P4 emits the device-local P4-16 program for a switch.
func (p *Program) P4(switchName string) (string, error) {
	id, ok := p.compiled.Topo.NodeByName(switchName)
	if !ok {
		return "", fmt.Errorf("contra: no switch named %q", switchName)
	}
	return p.compiled.GenerateP4(id), nil
}

// ProbePeriod returns the compiled probe period.
func (p *Program) ProbePeriod() time.Duration { return p.compiled.ProbePeriod() }

// MaxStateBytes returns the largest per-switch table state (Fig 10).
func (p *Program) MaxStateBytes() int { return p.compiled.Stats.MaxStateBytes }

// CompileTime returns how long compilation took (Fig 9).
func (p *Program) CompileTime() time.Duration { return p.compiled.Stats.CompileTime }

// ProbeClasses returns the number of probe classes (pids) the policy
// decomposed into.
func (p *Program) ProbeClasses() int { return p.compiled.Stats.Pids }

// TagBits returns the packet-header bits used by the minimized tag.
func (p *Program) TagBits() int { return p.compiled.Stats.TagBits }

// Experiment harness re-exports: the same runners drive the benchmark
// suite, the CLI driver, and downstream use.
type (
	// Scheme selects a routing system: contra, ecmp, hula, spain, sp.
	Scheme = exp.Scheme
	// FCTConfig drives a flow-completion-time experiment.
	FCTConfig = exp.FCTConfig
	// FCTResult summarizes one FCT run.
	FCTResult = exp.FCTResult
	// FailoverConfig drives the link-failure experiment (Fig 14).
	FailoverConfig = exp.FailoverConfig
	// FailoverResult reports the throughput series and recovery time.
	FailoverResult = exp.FailoverResult
	// CompileRow is one compiler scalability measurement (Figs 9/10).
	CompileRow = exp.CompileRow
)

// Scheme constants.
const (
	SchemeContra = exp.SchemeContra
	SchemeECMP   = exp.SchemeECMP
	SchemeHula   = exp.SchemeHula
	SchemeSpain  = exp.SchemeSpain
	SchemeSP     = exp.SchemeSP
)

// Scenario subsystem re-exports: declarative experiments with timed
// event scripts, and campaigns that sweep a scenario matrix across a
// parallel worker pool.
type (
	// Scenario is one declarative experiment: topology, scheme,
	// workload, and a timed event script.
	Scenario = scenario.Scenario
	// ScenarioEvent is one timed entry of a scenario's script.
	ScenarioEvent = scenario.Event
	// ScenarioWorkload describes a scenario's offered traffic.
	ScenarioWorkload = scenario.Workload
	// ScenarioResult summarizes one scenario run.
	ScenarioResult = scenario.Result
	// CampaignSpec is a cartesian scenario matrix (topologies ×
	// schemes × loads × event scripts × seeds).
	CampaignSpec = campaign.Spec
	// CampaignScript is a named event script inside a campaign.
	CampaignScript = campaign.Script
	// CampaignOptions tunes a campaign run (worker count, progress).
	CampaignOptions = campaign.Options
	// CampaignReport aggregates a campaign's per-scenario results.
	CampaignReport = campaign.Report
)

// Scenario event kinds.
const (
	EventLinkDown = scenario.LinkDown
	EventLinkUp   = scenario.LinkUp
	EventDegrade  = scenario.Degrade
	EventSurge    = scenario.Surge
)

// RunScenario executes one scenario deterministically.
func RunScenario(s Scenario) (*ScenarioResult, error) { return scenario.Run(s) }

// LoadCampaign reads a campaign spec file.
func LoadCampaign(path string) (*CampaignSpec, error) { return campaign.LoadFile(path) }

// RunCampaign expands a campaign matrix and executes it on a bounded
// worker pool; the aggregated report is identical for any worker
// count.
func RunCampaign(spec *CampaignSpec, opts CampaignOptions) (*CampaignReport, error) {
	return campaign.Run(spec, opts)
}

// RunFCT executes one flow-completion-time experiment.
func RunFCT(cfg FCTConfig) (*FCTResult, error) { return exp.RunFCT(cfg) }

// RunFailover executes the Figure 14 link-failure experiment.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) { return exp.RunFailover(cfg) }

// CompileSweep measures compile time and switch state across
// topologies and policies (Figures 9 and 10).
func CompileSweep(topos []*Topology, policies map[string]func(*Topology) string) ([]CompileRow, error) {
	return exp.CompileSweep(topos, policies)
}

// StandardPolicies returns the MU/WP/CA generators of §6.2.
func StandardPolicies() map[string]func(*Topology) string { return exp.StandardPolicies() }
