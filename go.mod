module contra

go 1.22
